// Inncabs "Sort": parallel merge sort (cilksort lineage), tasks on the
// divide step, serial sort below a threshold (Table V: ~52 us tasks,
// "variable/fine"; HPX scales to 16, std to 10 — Fig 4).
#pragma once

#include <inncabs/engine.hpp>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace inncabs {

template <typename E>
struct sort_bench
{
    static constexpr char const* name = "sort";

    struct params
    {
        std::size_t n = 1 << 16;
        std::size_t serial_cutoff = 2048;
        std::uint64_t seed = 11;

        static params tiny()
        {
            return {.n = 1 << 10, .serial_cutoff = 128, .seed = 11};
        }
        static params bench_default()
        {
            return {.n = 1 << 16, .serial_cutoff = 2048, .seed = 11};
        }
        static params paper()
        {
            // ~328k tasks in the paper; 2^25 keys with a 2k cutoff give
            // the same order of magnitude of task count.
            return {.n = 1 << 25, .serial_cutoff = 2048, .seed = 11};
        }
    };

    static std::vector<std::uint32_t> make_input(
        std::size_t n, std::uint64_t seed)
    {
        minihpx::util::xoshiro256ss rng(seed);
        std::vector<std::uint32_t> data(n);
        for (auto& x : data)
            x = static_cast<std::uint32_t>(rng());
        return data;
    }

    static void annotate_leaf(std::size_t n)
    {
        auto const fn = static_cast<double>(n);
        E::annotate_work({.cpu_ns = static_cast<std::uint64_t>(
                              fn * std::log2(std::max(fn, 2.0)) * 2.2),
            .data_rd_bytes = static_cast<std::uint64_t>(fn * 4),
            .rfo_bytes = static_cast<std::uint64_t>(fn * 4),
            .instructions = static_cast<std::uint64_t>(fn * 20)});
    }

    static void annotate_merge(std::size_t n)
    {
        E::annotate_work(
            {.cpu_ns = static_cast<std::uint64_t>(n) * 2,
                .data_rd_bytes = static_cast<std::uint64_t>(n) * 4,
                .rfo_bytes = static_cast<std::uint64_t>(n) * 4,
                .instructions = static_cast<std::uint64_t>(n) * 8});
    }

    static void sort_task(std::uint32_t* data, std::uint32_t* scratch,
        std::size_t n, std::size_t cutoff)
    {
        if (n <= cutoff)
        {
            E::trace_label("sort-leaf");
            annotate_leaf(n);
            if (!E::skip_compute())
                std::sort(data, data + n);
            return;
        }
        std::size_t const half = n / 2;
        auto left = E::async([data, scratch, half, cutoff] {
            sort_task(data, scratch, half, cutoff);
        });
        sort_task(data + half, scratch + half, n - half, cutoff);
        left.get();

        E::trace_label("sort-merge");
        annotate_merge(n);
        if (!E::skip_compute())
        {
            std::merge(data, data + half, data + half, data + n, scratch);
            std::copy(scratch, scratch + n, data);
        }
    }

    // Returns a checksum (sum of sorted sample positions).
    static std::uint64_t run(params const& p)
    {
        auto data = make_input(p.n, p.seed);
        std::vector<std::uint32_t> scratch(p.n);
        sort_task(data.data(), scratch.data(), p.n, p.serial_cutoff);
        if (E::skip_compute())
            return 0;
        std::uint64_t checksum = 0;
        for (std::size_t i = 0; i < p.n; i += p.n / 64 + 1)
            checksum = checksum * 31 + data[i];
        return checksum;
    }

    static std::uint64_t run_serial(params const& p)
    {
        auto data = make_input(p.n, p.seed);
        std::sort(data.begin(), data.end());
        std::uint64_t checksum = 0;
        for (std::size_t i = 0; i < p.n; i += p.n / 64 + 1)
            checksum = checksum * 31 + data[i];
        return checksum;
    }
};

}    // namespace inncabs
