// Inncabs "SparseLU": LU factorization of a sparse blocked matrix
// (BOTS lineage): per elimination step, fwd/bdiv tasks on the panel and
// bmod tasks on interior blocks (Table V: ~988 us tasks, coarse,
// loop-like; scales to 20 on both runtimes).
#pragma once

#include <inncabs/engine.hpp>

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

namespace inncabs {

template <typename E>
struct sparselu_bench
{
    static constexpr char const* name = "sparselu";

    struct params
    {
        std::size_t nb = 12;     // matrix is nb x nb blocks
        std::size_t bs = 32;     // block size
        std::uint64_t seed = 3;

        static params tiny() { return {.nb = 5, .bs = 8}; }
        static params bench_default() { return {.nb = 12, .bs = 32}; }
        static params paper()
        {
            // nb=32, bs=64: ~11k bmod tasks at ~1 ms each (Table V).
            return {.nb = 32, .bs = 64};
        }
    };

    using block = std::vector<double>;    // bs*bs, row-major
    using matrix = std::vector<std::unique_ptr<block>>;    // nb*nb, sparse

    // BOTS-style sparsity pattern: block (i,j) present if near the
    // diagonal or on selected bands; diagonal always present.
    static bool present(std::size_t i, std::size_t j) noexcept
    {
        return i == j || (i > j && (i - j) % 3 != 2) ||
            (j > i && (j - i) % 3 != 2);
    }

    static matrix make_matrix(params const& p)
    {
        minihpx::util::xoshiro256ss rng(p.seed);
        matrix m(p.nb * p.nb);
        for (std::size_t i = 0; i < p.nb; ++i)
        {
            for (std::size_t j = 0; j < p.nb; ++j)
            {
                if (!present(i, j))
                    continue;
                auto b = std::make_unique<block>(p.bs * p.bs);
                for (auto& x : *b)
                    x = rng.uniform01() * 0.1;
                if (i == j)    // diagonally dominant
                    for (std::size_t d = 0; d < p.bs; ++d)
                        (*b)[d * p.bs + d] += 4.0;
                m[i * p.nb + j] = std::move(b);
            }
        }
        return m;
    }

    // --- block kernels ---------------------------------------------------
    static void lu0(block& diag, std::size_t bs)
    {
        for (std::size_t k = 0; k < bs; ++k)
            for (std::size_t i = k + 1; i < bs; ++i)
            {
                diag[i * bs + k] /= diag[k * bs + k];
                for (std::size_t j = k + 1; j < bs; ++j)
                    diag[i * bs + j] -= diag[i * bs + k] * diag[k * bs + j];
            }
    }

    static void fwd(block const& diag, block& col, std::size_t bs)
    {
        for (std::size_t k = 0; k < bs; ++k)
            for (std::size_t i = k + 1; i < bs; ++i)
                for (std::size_t j = 0; j < bs; ++j)
                    col[i * bs + j] -= diag[i * bs + k] * col[k * bs + j];
    }

    static void bdiv(block const& diag, block& row, std::size_t bs)
    {
        for (std::size_t i = 0; i < bs; ++i)
            for (std::size_t k = 0; k < bs; ++k)
            {
                row[i * bs + k] /= diag[k * bs + k];
                for (std::size_t j = k + 1; j < bs; ++j)
                    row[i * bs + j] -= row[i * bs + k] * diag[k * bs + j];
            }
    }

    static void bmod(block const& row, block const& col, block& inner,
        std::size_t bs)
    {
        for (std::size_t i = 0; i < bs; ++i)
            for (std::size_t k = 0; k < bs; ++k)
            {
                double const rik = row[i * bs + k];
                for (std::size_t j = 0; j < bs; ++j)
                    inner[i * bs + j] -= rik * col[k * bs + j];
            }
    }

    static void annotate_block_kernel(std::size_t bs)
    {
        double const fb = static_cast<double>(bs);
        // bs^3 multiply-adds, ~3.8 ns each: bs=64 -> ~1 ms (Table V).
        E::annotate_work({.cpu_ns = static_cast<std::uint64_t>(
                              fb * fb * fb * 3.8),
            .data_rd_bytes = static_cast<std::uint64_t>(fb * fb * 24),
            .rfo_bytes = static_cast<std::uint64_t>(fb * fb * 8),
            .instructions =
                static_cast<std::uint64_t>(fb * fb * fb * 4)});
    }

    static double run_impl(params const& p, bool parallel)
    {
        auto m = make_matrix(p);
        std::size_t const nb = p.nb, bs = p.bs;
        auto at = [&](std::size_t i, std::size_t j) -> block* {
            return m[i * nb + j].get();
        };

        for (std::size_t k = 0; k < nb; ++k)
        {
            lu0(*at(k, k), bs);
            if (parallel)
            {
                std::vector<efuture<E, void>> panel;
                for (std::size_t j = k + 1; j < nb; ++j)
                {
                    if (at(k, j))
                        panel.push_back(E::async([&, j] {
                            annotate_block_kernel(bs);
                            if (!E::skip_compute())
                                fwd(*at(k, k), *at(k, j), bs);
                        }));
                    if (at(j, k))
                        panel.push_back(E::async([&, j] {
                            annotate_block_kernel(bs);
                            if (!E::skip_compute())
                                bdiv(*at(k, k), *at(j, k), bs);
                        }));
                }
                for (auto& f : panel)
                    f.get();

                std::vector<efuture<E, void>> interior;
                for (std::size_t i = k + 1; i < nb; ++i)
                {
                    if (!at(i, k))
                        continue;
                    for (std::size_t j = k + 1; j < nb; ++j)
                    {
                        if (!at(k, j))
                            continue;
                        if (!at(i, j))
                            m[i * nb + j] =
                                std::make_unique<block>(bs * bs, 0.0);
                        interior.push_back(E::async([&, i, j] {
                            annotate_block_kernel(bs);
                            if (!E::skip_compute())
                                bmod(*at(i, k), *at(k, j), *at(i, j), bs);
                        }));
                    }
                }
                for (auto& f : interior)
                    f.get();
            }
            else
            {
                for (std::size_t j = k + 1; j < nb; ++j)
                {
                    if (at(k, j))
                        fwd(*at(k, k), *at(k, j), bs);
                    if (at(j, k))
                        bdiv(*at(k, k), *at(j, k), bs);
                }
                for (std::size_t i = k + 1; i < nb; ++i)
                {
                    if (!at(i, k))
                        continue;
                    for (std::size_t j = k + 1; j < nb; ++j)
                    {
                        if (!at(k, j))
                            continue;
                        if (!at(i, j))
                            m[i * nb + j] =
                                std::make_unique<block>(bs * bs, 0.0);
                        bmod(*at(i, k), *at(k, j), *at(i, j), bs);
                    }
                }
            }
        }

        if (parallel && E::skip_compute())
            return 0.0;
        double checksum = 0;
        for (std::size_t i = 0; i < nb; ++i)
            if (block* diag = at(i, i))
                checksum += (*diag)[0] + (*diag)[bs * bs - 1];
        return checksum;
    }

    static double run(params const& p) { return run_impl(p, true); }
    static double run_serial(params const& p) { return run_impl(p, false); }
};

}    // namespace inncabs
