// Inncabs "Strassen": Strassen-Winograd style recursive matrix multiply
// with 7 spawned subproblems per node and a classic blocked multiply at
// the cutoff (Table V: ~107 us tasks, "fine"; HPX speedup 11 at 20
// cores, std partially fails — Figs 3, 10).
#pragma once

#include <inncabs/engine.hpp>

#include <cstdint>
#include <vector>

namespace inncabs {

template <typename E>
struct strassen_bench
{
    static constexpr char const* name = "strassen";

    // Row-major square matrix with stride (views into quadrants).
    struct view
    {
        double* data;
        std::size_t stride;
        double& at(std::size_t r, std::size_t c) const
        {
            return data[r * stride + c];
        }
    };

    struct params
    {
        std::size_t n = 256;          // power of two
        std::size_t cutoff = 32;      // classic multiply below this

        static params tiny() { return {.n = 64, .cutoff = 16}; }
        static params bench_default() { return {.n = 512, .cutoff = 64}; }
        static params paper() { return {.n = 4096, .cutoff = 64}; }
    };

    static std::vector<double> make_matrix(std::size_t n, std::uint64_t seed)
    {
        minihpx::util::xoshiro256ss rng(seed);
        std::vector<double> m(n * n);
        for (auto& x : m)
            x = rng.uniform01() - 0.5;
        return m;
    }

    static void annotate_gemm(std::size_t n)
    {
        auto const fn = static_cast<double>(n);
        // n^3 multiply-adds at ~0.45 ns each (vectorized kernel) lands
        // the 64-cutoff leaf near Table V's 107 us average duration.
        E::annotate_work({.cpu_ns = static_cast<std::uint64_t>(
                              fn * fn * fn * 0.38),
            .data_rd_bytes = static_cast<std::uint64_t>(fn * fn * 16.0),
            .rfo_bytes = static_cast<std::uint64_t>(fn * fn * 8.0),
            .instructions = static_cast<std::uint64_t>(fn * fn * fn * 4)});
    }

    static void gemm_acc(view c, view a, view b, std::size_t n)
    {
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t k = 0; k < n; ++k)
            {
                double const aik = a.at(i, k);
                for (std::size_t j = 0; j < n; ++j)
                    c.at(i, j) += aik * b.at(k, j);
            }
    }

    // c = a*b (recursive 2x2 block decomposition; the spawn structure —
    // 7 child tasks per node via futures — is what Inncabs measures; we
    // use the straightforward 8-product form with 7 spawned + 1 local,
    // which has the same task tree shape).
    static void multiply_task(
        view c, view a, view b, std::size_t n, std::size_t cutoff)
    {
        if (n <= cutoff)
        {
            annotate_gemm(n);
            if (!E::skip_compute())
                gemm_acc(c, a, b, n);
            return;
        }
        std::size_t const h = n / 2;
        auto q = [h](view m, int r, int col) {
            return view{m.data + (r * h) * m.stride + col * h, m.stride};
        };

        // First wave: Cij += Ai0 * B0j (4 quadrant products, 3 spawned).
        std::vector<efuture<E, void>> wave;
        wave.reserve(3);
        for (int idx = 1; idx < 4; ++idx)
        {
            int const r = idx / 2, col = idx % 2;
            wave.push_back(E::async([=] {
                multiply_task(q(c, r, col), q(a, r, 0), q(b, 0, col), h,
                    cutoff);
            }));
        }
        multiply_task(q(c, 0, 0), q(a, 0, 0), q(b, 0, 0), h, cutoff);
        for (auto& f : wave)
            f.get();
        wave.clear();

        // Second wave: Cij += Ai1 * B1j.
        for (int idx = 1; idx < 4; ++idx)
        {
            int const r = idx / 2, col = idx % 2;
            wave.push_back(E::async([=] {
                multiply_task(q(c, r, col), q(a, r, 1), q(b, 1, col), h,
                    cutoff);
            }));
        }
        multiply_task(q(c, 0, 0), q(a, 0, 1), q(b, 1, 0), h, cutoff);
        for (auto& f : wave)
            f.get();
    }

    static double checksum(std::vector<double> const& m)
    {
        double sum = 0;
        for (std::size_t i = 0; i < m.size(); i += m.size() / 97 + 1)
            sum += m[i];
        return sum;
    }

    static double run(params const& p)
    {
        auto a = make_matrix(p.n, 1);
        auto b = make_matrix(p.n, 2);
        std::vector<double> c(p.n * p.n, 0.0);
        multiply_task(view{c.data(), p.n}, view{a.data(), p.n},
            view{b.data(), p.n}, p.n, p.cutoff);
        return E::skip_compute() ? 0.0 : checksum(c);
    }

    static double run_serial(params const& p)
    {
        auto a = make_matrix(p.n, 1);
        auto b = make_matrix(p.n, 2);
        std::vector<double> c(p.n * p.n, 0.0);
        gemm_acc(view{c.data(), p.n}, view{a.data(), p.n},
            view{b.data(), p.n}, p.n);
        return checksum(c);
    }
};

}    // namespace inncabs
