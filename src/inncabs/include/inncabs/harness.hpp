// Measurement harness reproducing the paper's protocol (§V-D):
// N samples per experiment, medians reported, performance counters
// evaluated-and-reset around every sample via the
// evaluate_active_counters / reset_active_counters API.
#pragma once

#include <minihpx/perf/active_counters.hpp>
#include <minihpx/util/stats.hpp>

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace inncabs {

struct sample_result
{
    minihpx::util::sample_set times_ms;
    double median_ms() const { return times_ms.median(); }
};

// Runs `body` `samples` times. Counter protocol per sample: reset
// before, evaluate(reset=true) after, annotated with the sample index
// (the global perf::counter_session receives the output, if any).
template <typename Body>
sample_result run_samples(
    std::string_view label, unsigned samples, Body&& body)
{
    sample_result result;
    result.times_ms.reserve(samples);
    for (unsigned s = 0; s < samples; ++s)
    {
        minihpx::perf::reset_active_counters();
        auto const t0 = std::chrono::steady_clock::now();
        body();
        auto const t1 = std::chrono::steady_clock::now();
        minihpx::perf::evaluate_active_counters(/*reset=*/true,
            std::string(label) + " sample#" + std::to_string(s));
        result.times_ms.add(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
    return result;
}

// ---- type-erased suite access (driver + benches) -----------------------

enum class input_scale : std::uint8_t
{
    tiny,            // unit tests
    bench_default,   // quick local runs
    paper,           // the paper's input sizes
};

struct benchmark_entry
{
    std::string name;
    // Runs the benchmark once on engine `E`; returns a result checksum
    // (engine chosen by the Runner template below).
    std::function<double(input_scale)> run_minihpx;
    std::function<double(input_scale)> run_std;
    std::function<double(input_scale)> run_serial;
    // Runs the workload on sim_engine; must be called from inside a
    // simulator task (the caller owns simulator::run). Returns the
    // checksum (0 when the simulator skips compute).
    std::function<double(input_scale)> run_sim_body;
};

// All fifteen benchmarks: Table V order, then the tiled matmul.
std::vector<benchmark_entry> const& suite();

// nullptr when `name` is not in the suite.
benchmark_entry const* find_benchmark(std::string_view name);

}    // namespace inncabs
