// Inncabs "Round": round-robin token circulation; K tokens travel a
// ring of K participants for R laps. Every hop is a task that waits on
// the token's previous hop and takes two participant mutexes
// (Table V: "2 mutex/task", ~9671 us, coarse, co-dependent; scales to
// 20 on both runtimes).
#pragma once

#include <inncabs/engine.hpp>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

namespace inncabs {

template <typename E>
struct round_bench
{
    static constexpr char const* name = "round";

    struct params
    {
        unsigned participants = 16;    // ring size == tokens in flight
        unsigned laps = 4;             // tasks = participants * laps
        std::uint64_t hop_work_ns = 9'600'000;    // Table V grain

        static params tiny()
        {
            return {.participants = 4, .laps = 2, .hop_work_ns = 20000};
        }
        static params bench_default()
        {
            return {.participants = 16, .laps = 4, .hop_work_ns = 9'600'000};
        }
        static params paper()
        {
            // 64 x 8 = 512 tasks (Table I: 512 baseline tasks).
            return {.participants = 64, .laps = 8,
                .hop_work_ns = 9'600'000};
        }
    };

    struct ring
    {
        std::vector<std::unique_ptr<typename E::mutex>> mutexes;
        std::vector<std::uint64_t> visits;

        explicit ring(unsigned k) : visits(k, 0)
        {
            mutexes.reserve(k);
            for (unsigned i = 0; i < k; ++i)
                mutexes.push_back(std::make_unique<typename E::mutex>());
        }
    };

    // One hop: the token moves from `at` to `at+1`, locking both
    // participants (in index order, deadlock-free), doing the hop work.
    static std::uint64_t hop(
        ring& r, unsigned at, std::uint64_t token, std::uint64_t work_ns)
    {
        unsigned const next =
            (at + 1) % static_cast<unsigned>(r.visits.size());
        auto* first = r.mutexes[std::min(at, next)].get();
        auto* second = r.mutexes[std::max(at, next)].get();
        first->lock();
        if (second != first)
            second->lock();
        E::annotate_work({.cpu_ns = work_ns,
            .data_rd_bytes = work_ns / 12,
            .instructions = work_ns * 2});
        if (!E::skip_compute())
        {
            // Real busy-work proportional to the annotated amount.
            volatile double x = 1.0;
            for (std::uint64_t i = 0; i < work_ns / 8; ++i)
                x = x * 1.0000001 + 0.25;
        }
        ++r.visits[at];
        if (second != first)
            second->unlock();
        first->unlock();
        return token + 1;
    }

    // Each token hops around the ring as a chain of tasks; K chains run
    // concurrently and contend on the shared participant mutexes.
    static std::uint64_t run(params const& p)
    {
        ring r(p.participants);
        std::vector<efuture<E, std::uint64_t>> chains;
        chains.reserve(p.participants);
        for (unsigned start = 0; start < p.participants; ++start)
        {
            efuture<E, std::uint64_t> prev =
                E::async([] { return std::uint64_t(0); });
            for (unsigned lap = 0; lap < p.laps; ++lap)
            {
                unsigned const at =
                    (start + lap) % p.participants;
                prev = E::async(
                    [&r, at, work = p.hop_work_ns,
                        pf = std::move(prev)]() mutable {
                        std::uint64_t const token = pf.get();
                        return hop(r, at, token, work);
                    });
            }
            chains.push_back(std::move(prev));
        }
        std::uint64_t total = 0;
        for (auto& f : chains)
            total += f.get();
        return total;    // == participants * laps
    }

    static std::uint64_t run_serial(params const& p)
    {
        return static_cast<std::uint64_t>(p.participants) * p.laps;
    }
};

}    // namespace inncabs
