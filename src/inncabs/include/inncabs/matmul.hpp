// Blocked/tiled dense matrix multiply: the cache-locality workload.
//
// Unlike Strassen's recursive decomposition, this benchmark makes tile
// size a *tunable* and exposes the classic locality trade directly:
// tile=0 spawns one task per row band whose inner ijk loop streams the
// whole of B per band (working set far beyond TLB/LLC reach), while
// tile=t spawns one task per t x t tile of C iterating k-blocks of
// t x t mini-gemms (working set 3*t^2 doubles). Both orders accumulate
// each C(i,j) in ascending k, so the checksum is bitwise identical
// across tile sizes and engines — only the memory behavior differs,
// which is exactly what the dTLB/LLC counters are supposed to expose
// (paper §V-C ties efficiency loss to memory traffic, not arithmetic).
#pragma once

#include <inncabs/engine.hpp>

#include <algorithm>
#include <cstdint>
#include <vector>

namespace inncabs {

// Drivers may override the tile size the suite-registered entry uses
// (inncabs_driver --tile=N; 0 = untiled row bands). size_t(-1) means
// "use the input scale's default". Direct matmul_bench<E>::run calls
// with explicit params (tests, bench/matmul_tiling) see the override
// too, so sweep drivers should leave it untouched.
inline std::size_t& matmul_tile_override() noexcept
{
    static std::size_t tile = static_cast<std::size_t>(-1);
    return tile;
}

template <typename E>
struct matmul_bench
{
    static constexpr char const* name = "matmul";

    // Row-major matrix with stride (views into tiles/bands).
    struct view
    {
        double* data;
        std::size_t stride;
        double& at(std::size_t r, std::size_t c) const
        {
            return data[r * stride + c];
        }
    };

    struct params
    {
        std::size_t n = 256;
        // Edge length of the C tiles (one task per tile, k-blocked
        // mini-gemms inside). 0 = untiled: one task per row band of
        // height `band`, streaming all of B per band.
        std::size_t tile = 32;
        std::size_t band = 32;

        static params tiny() { return {.n = 64, .tile = 16, .band = 8}; }
        static params bench_default()
        {
            return {.n = 512, .tile = 64, .band = 32};
        }
        static params paper() { return {.n = 3072, .tile = 64, .band = 32}; }
    };

    static std::vector<double> make_matrix(std::size_t n, std::uint64_t seed)
    {
        minihpx::util::xoshiro256ss rng(seed);
        std::vector<double> m(n * n);
        for (auto& x : m)
            x = rng.uniform01() - 0.5;
        return m;
    }

    // One rows x inner x cols gemm region: compute at the Strassen
    // kernel's calibrated 0.38 ns/madd, traffic proportional to the
    // operand areas, and — new here — the *working set* (distinct bytes
    // of the three operand blocks) plus access count that feed the
    // deterministic dTLB/LLC model. A t=64 tile is 3*64^2*8 = 96 KiB
    // (24 pages, compulsory walks only); an untiled band at n=512 is
    // (n^2 + 2*h*n)*8 = 2.3 MiB (576 pages, past the 512-entry STLB).
    static void annotate_gemm(
        std::size_t rows, std::size_t inner, std::size_t cols)
    {
        auto const fr = static_cast<double>(rows);
        auto const fi = static_cast<double>(inner);
        auto const fc = static_cast<double>(cols);
        E::annotate_work(
            {.cpu_ns = static_cast<std::uint64_t>(fr * fi * fc * 0.38),
                .data_rd_bytes =
                    static_cast<std::uint64_t>((fr * fi + fi * fc) * 8.0),
                .rfo_bytes = static_cast<std::uint64_t>(fr * fc * 8.0),
                .instructions =
                    static_cast<std::uint64_t>(fr * fi * fc * 4),
                .footprint_bytes = static_cast<std::uint64_t>(
                    (fr * fi + fi * fc + fr * fc) * 8.0),
                .mem_accesses =
                    static_cast<std::uint64_t>(2.0 * fr * fi * fc)});
    }

    // c[0..rows)[0..cols) += a[0..rows)[0..inner) * b[0..inner)[0..cols)
    static void gemm_acc(view c, view a, view b, std::size_t rows,
        std::size_t inner, std::size_t cols)
    {
        for (std::size_t i = 0; i < rows; ++i)
            for (std::size_t k = 0; k < inner; ++k)
            {
                double const aik = a.at(i, k);
                for (std::size_t j = 0; j < cols; ++j)
                    c.at(i, j) += aik * b.at(k, j);
            }
    }

    static view offset(view m, std::size_t r, std::size_t c)
    {
        return view{m.data + r * m.stride + c, m.stride};
    }

    static void multiply(view c, view a, view b, params const& p)
    {
        std::vector<efuture<E, void>> tasks;
        if (p.tile == 0)
        {
            std::size_t const h = p.band ? p.band : 32;
            for (std::size_t i0 = 0; i0 < p.n; i0 += h)
            {
                std::size_t const rows = std::min(h, p.n - i0);
                tasks.push_back(E::async([=] {
                    E::trace_label("matmul-band");
                    annotate_gemm(rows, p.n, p.n);
                    if (!E::skip_compute())
                        gemm_acc(offset(c, i0, 0), offset(a, i0, 0), b,
                            rows, p.n, p.n);
                }));
            }
        }
        else
        {
            std::size_t const t = p.tile;
            for (std::size_t i0 = 0; i0 < p.n; i0 += t)
                for (std::size_t j0 = 0; j0 < p.n; j0 += t)
                {
                    tasks.push_back(E::async([=] {
                        E::trace_label("matmul-tile");
                        std::size_t const ti = std::min(t, p.n - i0);
                        std::size_t const tj = std::min(t, p.n - j0);
                        for (std::size_t k0 = 0; k0 < p.n; k0 += t)
                        {
                            std::size_t const tk = std::min(t, p.n - k0);
                            annotate_gemm(ti, tk, tj);
                            if (!E::skip_compute())
                                gemm_acc(offset(c, i0, j0),
                                    offset(a, i0, k0), offset(b, k0, j0),
                                    ti, tk, tj);
                        }
                    }));
                }
        }
        for (auto& f : tasks)
            f.get();
    }

    static double checksum(std::vector<double> const& m)
    {
        double sum = 0;
        for (std::size_t i = 0; i < m.size(); i += m.size() / 97 + 1)
            sum += m[i];
        return sum;
    }

    static double run(params p)
    {
        if (matmul_tile_override() != static_cast<std::size_t>(-1))
            p.tile = matmul_tile_override();
        auto a = make_matrix(p.n, 1);
        auto b = make_matrix(p.n, 2);
        std::vector<double> c(p.n * p.n, 0.0);
        multiply(view{c.data(), p.n}, view{a.data(), p.n},
            view{b.data(), p.n}, p);
        return E::skip_compute() ? 0.0 : checksum(c);
    }

    static double run_serial(params const& p)
    {
        auto a = make_matrix(p.n, 1);
        auto b = make_matrix(p.n, 2);
        std::vector<double> c(p.n * p.n, 0.0);
        gemm_acc(view{c.data(), p.n}, view{a.data(), p.n},
            view{b.data(), p.n}, p.n, p.n, p.n);
        return checksum(c);
    }
};

}    // namespace inncabs
