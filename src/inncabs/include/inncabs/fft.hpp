// Inncabs "FFT": recursive radix-2 Cooley-Tukey, a task per recursion
// node (Table V: ~1.03 us tasks, "variable/very fine"; limited HPX
// scaling, std::async far slower — Figs 5, 11).
#pragma once

#include <inncabs/engine.hpp>

#include <cmath>
#include <complex>
#include <cstdint>
#include <numbers>
#include <vector>

namespace inncabs {

template <typename E>
struct fft_bench
{
    static constexpr char const* name = "fft";
    using cplx = std::complex<double>;

    struct params
    {
        std::size_t n = 1 << 12;          // must be a power of two
        std::size_t serial_cutoff = 64;   // direct DFT below this

        static params tiny() { return {.n = 1 << 8}; }
        static params bench_default() { return {.n = 1 << 12}; }
        static params paper() { return {.n = 1 << 20}; }
    };

    // Deterministic pseudo-signal.
    static std::vector<cplx> make_input(std::size_t n)
    {
        std::vector<cplx> data(n);
        for (std::size_t i = 0; i < n; ++i)
        {
            double const x = static_cast<double>(i);
            data[i] = {std::sin(0.31 * x) + 0.5 * std::sin(0.017 * x),
                std::cos(0.11 * x)};
        }
        return data;
    }

    static void fft_serial(std::vector<cplx>& a)
    {
        std::size_t const n = a.size();
        if (n <= 1)
            return;
        std::vector<cplx> even(n / 2), odd(n / 2);
        for (std::size_t i = 0; i < n / 2; ++i)
        {
            even[i] = a[2 * i];
            odd[i] = a[2 * i + 1];
        }
        fft_serial(even);
        fft_serial(odd);
        combine(a, even, odd);
    }

    static void combine(std::vector<cplx>& out,
        std::vector<cplx> const& even, std::vector<cplx> const& odd)
    {
        std::size_t const n = out.size();
        for (std::size_t k = 0; k < n / 2; ++k)
        {
            double const angle =
                -2.0 * std::numbers::pi * static_cast<double>(k) /
                static_cast<double>(n);
            cplx const t = std::polar(1.0, angle) * odd[k];
            out[k] = even[k] + t;
            out[k + n / 2] = even[k] - t;
        }
    }

    static void fft_task(std::vector<cplx>& a, std::size_t cutoff)
    {
        std::size_t const n = a.size();
        if (n <= 1)
            return;
        if (n <= cutoff)
        {
            // Leaf: n log n butterfly work over n*16-byte data.
            auto const fn = static_cast<double>(n);
            E::annotate_work(
                {.cpu_ns = static_cast<std::uint64_t>(
                     fn * std::log2(fn) * 2.0),
                    .data_rd_bytes = static_cast<std::uint64_t>(fn * 16.0),
                    .rfo_bytes = static_cast<std::uint64_t>(fn * 16.0),
                    .instructions = static_cast<std::uint64_t>(
                        fn * std::log2(fn) * 8.0)});
            if (!E::skip_compute())
                fft_serial(a);
            return;
        }

        std::vector<cplx> even(n / 2), odd(n / 2);
        for (std::size_t i = 0; i < n / 2; ++i)
        {
            even[i] = a[2 * i];
            odd[i] = a[2 * i + 1];
        }
        auto left = E::async(
            [&even, cutoff] { fft_task(even, cutoff); });
        fft_task(odd, cutoff);
        left.get();

        // Internal node: split + combine cost.
        E::annotate_work({.cpu_ns = static_cast<std::uint64_t>(n) * 1,
            .data_rd_bytes = static_cast<std::uint64_t>(n) * 8,
            .rfo_bytes = static_cast<std::uint64_t>(n) * 8});
        if (!E::skip_compute())
            combine(a, even, odd);
    }

    // Returns a checksum of the transform (magnitude sum).
    static double run(params const& p)
    {
        auto data = make_input(p.n);
        fft_task(data, p.serial_cutoff);
        if (E::skip_compute())
            return 0.0;
        double sum = 0;
        for (auto const& c : data)
            sum += std::abs(c);
        return sum;
    }

    static double run_serial(params const& p)
    {
        auto data = make_input(p.n);
        fft_serial(data);
        double sum = 0;
        for (auto const& c : data)
            sum += std::abs(c);
        return sum;
    }
};

}    // namespace inncabs
