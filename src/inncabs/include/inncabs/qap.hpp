// Inncabs "QAP": branch-and-bound quadratic assignment — assign n
// facilities to n locations minimizing sum(flow[i][j]*dist[p(i)][p(j)])
// (Table V: ~1.0 us, very fine, recursive unbalanced, atomic pruning).
// The paper could only run the smallest input (memory limits); we
// default to a small instance too.
#pragma once

#include <inncabs/engine.hpp>

#include <atomic>
#include <cstdint>
#include <vector>

namespace inncabs {

template <typename E>
struct qap_bench
{
    static constexpr char const* name = "qap";

    struct params
    {
        int n = 9;
        int task_depth = 2;
        std::uint64_t seed = 17;

        static params tiny() { return {.n = 6, .task_depth = 2}; }
        // The paper runs only the smallest input; tasks are spawned at
        // every node, which is what makes QAP very fine grained (~1 us).
        static params bench_default() { return {.n = 8, .task_depth = 8}; }
        static params paper() { return {.n = 9, .task_depth = 9}; }
    };

    struct instance
    {
        int n;
        std::vector<int> flow;    // n*n
        std::vector<int> dist;    // n*n
    };

    static instance make_instance(params const& p)
    {
        minihpx::util::xoshiro256ss rng(p.seed);
        instance inst;
        inst.n = p.n;
        auto const n = static_cast<std::size_t>(p.n);
        inst.flow.resize(n * n);
        inst.dist.resize(n * n);
        for (std::size_t i = 0; i < n; ++i)
        {
            for (std::size_t j = 0; j < n; ++j)
            {
                if (i == j)
                    continue;
                inst.flow[i * n + j] = static_cast<int>(rng.below(10));
                inst.dist[i * n + j] = static_cast<int>(rng.below(10)) + 1;
            }
        }
        return inst;
    }

    struct shared_state
    {
        std::atomic<int> best{1 << 30};
        std::atomic<std::uint64_t> nodes{0};
    };

    // Partial cost of placing facility `f` at location `loc` given the
    // already-fixed prefix assignment.
    static int delta_cost(instance const& inst,
        std::vector<int> const& assign, int depth, int loc)
    {
        auto const n = static_cast<std::size_t>(inst.n);
        int cost = 0;
        auto const f = static_cast<std::size_t>(depth);
        for (std::size_t i = 0; i < f; ++i)
        {
            auto const li = static_cast<std::size_t>(
                assign[static_cast<std::size_t>(i)]);
            cost += inst.flow[i * n + f] *
                    inst.dist[li * n + static_cast<std::size_t>(loc)] +
                inst.flow[f * n + i] *
                    inst.dist[static_cast<std::size_t>(loc) * n + li];
        }
        return cost;
    }

    static void search(instance const& inst, params const& p,
        shared_state& state, std::vector<int> assign, std::uint32_t used,
        int depth, int cost)
    {
        state.nodes.fetch_add(1, std::memory_order_relaxed);
        E::annotate_work(
            {.cpu_ns = 750, .data_rd_bytes = 96, .instructions = 1100});

        if (cost >= state.best.load(std::memory_order_relaxed))
            return;    // admissible prefix bound
        if (depth == inst.n)
        {
            int best = state.best.load(std::memory_order_relaxed);
            while (
                cost < best && !state.best.compare_exchange_weak(best, cost))
            {
            }
            return;
        }

        std::vector<efuture<E, void>> futures;
        for (int loc = 0; loc < inst.n; ++loc)
        {
            if (used & (1u << loc))
                continue;
            int const ncost = cost + delta_cost(inst, assign, depth, loc);
            auto next = assign;
            next[static_cast<std::size_t>(depth)] = loc;
            std::uint32_t const nused = used | (1u << loc);
            if (depth < p.task_depth)
            {
                futures.push_back(E::async(
                    [&inst, &p, &state, next = std::move(next), nused,
                        depth, ncost]() mutable {
                        search(inst, p, state, std::move(next), nused,
                            depth + 1, ncost);
                    }));
            }
            else
            {
                search(inst, p, state, std::move(next), nused, depth + 1,
                    ncost);
            }
        }
        for (auto& f : futures)
            f.get();
    }

    static int run(params const& p)
    {
        auto const inst = make_instance(p);
        shared_state state;
        search(inst, p, state,
            std::vector<int>(static_cast<std::size_t>(p.n), -1), 0, 0, 0);
        return state.best.load();
    }

    static int run_serial(params const& p)
    {
        params serial = p;
        serial.task_depth = -1;
        auto const inst = make_instance(p);
        shared_state state;
        search(inst, serial, state,
            std::vector<int>(static_cast<std::size_t>(p.n), -1), 0, 0, 0);
        return state.best.load();
    }
};

}    // namespace inncabs
