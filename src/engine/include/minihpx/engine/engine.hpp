// The minihpx Engine concept: one static interface, three runtimes.
//
// Every workload family (Inncabs fork/join trees, Task Bench dependency
// graphs) is written once against this concept and compiles unchanged
// against the real minihpx runtime, the thread-per-task C++11 baseline,
// and the virtual-time simulator. This mirrors — and extends — the
// paper's porting story (Table II): moving a benchmark between
// std::async and HPX is a namespace swap.
//
// Concept surface (version 2):
//
//   E::template future<T>         one-shot future type
//   E::template shared_future<T>  copyable handle (fan-out dependencies)
//   E::mutex                      lockable
//   E::launch                     {async, deferred, fork, sync}
//
//   E::async([policy,] f, xs...) -> future<R>
//   E::share(future<T>&&)        -> shared_future<T>
//   E::when_all(vector<shared_future<T>>) -> future<void>
//                                 dependency gate: ready when all are
//   E::then(future<void>, f)     -> future<R>
//                                 spawn f as a NEW task once the gate
//                                 fires (dataflow continuation, not an
//                                 inline callback)
//   E::sync_wait(future<T>)      -> T   blocking wait from graph root
//
//   E::annotate_work(w)           cost-model + PMU feed
//   E::trace_label(lit)           label the running task in a trace
//   E::skip_compute()             sim may skip data-independent kernels
//   E::name()
//
// Version 1 was fork/join only (async + annotate_work + trace_label);
// version 2 adds the explicit-dependency surface (share / when_all /
// then / sync_wait) that Task Bench graphs require. engine_traits<E>
// below checks conformance at compile time; the runtime contract is
// pinned by tests/test_engine_concept.cpp for all three engines.
#pragma once

#include <minihpx/baseline/std_engine.hpp>
#include <minihpx/minihpx.hpp>
#include <minihpx/sim/engine.hpp>

#include <type_traits>
#include <utility>
#include <vector>

namespace minihpx::engine {

inline constexpr int concept_version = 2;

// Real execution on the minihpx runtime (a runtime must be active).
struct minihpx_engine
{
    template <typename T>
    using future = minihpx::future<T>;
    template <typename T>
    using shared_future = minihpx::shared_future<T>;
    using mutex = minihpx::mutex;

    enum class launch : std::uint8_t
    {
        async,
        deferred,
        fork,
        sync,
    };

    static constexpr minihpx::launch to_native(launch policy) noexcept
    {
        switch (policy)
        {
        case launch::deferred:
            return minihpx::launch::deferred;
        case launch::fork:
            return minihpx::launch::fork;
        case launch::sync:
            return minihpx::launch::sync;
        case launch::async:
        default:
            return minihpx::launch::async;
        }
    }

    template <typename F, typename... Ts>
    static auto async(launch policy, F&& f, Ts&&... ts)
    {
        return minihpx::async(to_native(policy), std::forward<F>(f),
            std::forward<Ts>(ts)...);
    }

    template <typename F, typename... Ts,
        typename =
            std::enable_if_t<!std::is_same_v<std::decay_t<F>, launch>>>
    static auto async(F&& f, Ts&&... ts)
    {
        return minihpx::async(std::forward<F>(f), std::forward<Ts>(ts)...);
    }

    // ---- dependency-graph surface (concept v2) -------------------------
    // when_all maps to the native gate in future.hpp (no task spawned:
    // readiness propagates through continuation slots with one atomic
    // countdown); then() spawns the continuation as a real task when
    // the gate fires, so every graph point is a scheduled task — which
    // is exactly what METG is supposed to price.

    template <typename T>
    static minihpx::shared_future<T> share(minihpx::future<T>&& f)
    {
        return f.share();
    }

    template <typename T>
    static minihpx::future<void> when_all(
        std::vector<minihpx::shared_future<T>> const& deps)
    {
        return minihpx::when_all(deps);
    }

    template <typename F>
    static auto then(minihpx::future<void> gate, F&& fn)
        -> minihpx::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using R = std::invoke_result_t<std::decay_t<F>>;
        minihpx::promise<R> p;
        auto out = p.get_future();
        auto keep = gate.state();
        // The callback holds a reference to the gate state (a cycle the
        // fire breaks: mark_ready moves the callback out and drops it
        // after running) and spawns the continuation as a fresh task.
        keep->when_ready(
            [keep, p = std::move(p), fn = std::forward<F>(fn)]() mutable {
                minihpx::async([p = std::move(p),
                                   fn = std::move(fn)]() mutable {
                    try
                    {
                        if constexpr (std::is_void_v<R>)
                        {
                            fn();
                            p.set_value();
                        }
                        else
                        {
                            p.set_value(fn());
                        }
                    }
                    catch (...)
                    {
                        p.set_exception(std::current_exception());
                    }
                });
            });
        return out;
    }

    template <typename T>
    static T sync_wait(minihpx::future<T> f)
    {
        return f.get();
    }

    static void annotate_work(minihpx::work_annotation const& w) noexcept
    {
        minihpx::annotate_work(w);
    }

    // Label the running task for trace analysis (no-op unless a
    // trace::session is active). `label` must be a string literal /
    // static storage — the recorder stores the pointer, not a copy.
    static void trace_label(char const* label) noexcept
    {
        minihpx::this_task::annotate(label);
    }

    static bool skip_compute() noexcept { return false; }
    static constexpr char const* name() noexcept { return "minihpx"; }
};

// Real thread-per-task execution (paper's "C++11 Standard" baseline).
using std_engine = minihpx::baseline::std_engine;

// Virtual-time execution on the simulated Table III node.
using sim_engine = minihpx::sim::sim_engine;

// Convenience aliases for workload code.
template <typename E, typename T>
using efuture = typename E::template future<T>;

template <typename E, typename T>
using eshared_future = typename E::template shared_future<T>;

// ---- compile-time conformance --------------------------------------------
// engine_traits<E> detects every member of the concept surface;
// is_engine_v<E> is the conjunction. The conformance test suite
// static_asserts it for all three engines, so a backend that drifts
// from the concept fails at compile time with a named trait, not at
// template-instantiation depth inside a workload.

namespace detail {

    template <typename, template <typename> typename, typename = void>
    struct detect : std::false_type
    {
    };

    template <typename E, template <typename> typename Op>
    struct detect<E, Op, std::void_t<Op<E>>> : std::true_type
    {
    };

    template <typename E>
    using future_t = typename E::template future<int>;
    template <typename E>
    using shared_future_t = typename E::template shared_future<int>;
    template <typename E>
    using mutex_t = typename E::mutex;
    template <typename E>
    using launch_t = typename E::launch;

    template <typename E>
    using async_t = decltype(E::async(std::declval<int (*)()>()));
    template <typename E>
    using async_policy_t = decltype(
        E::async(E::launch::async, std::declval<int (*)()>()));
    template <typename E>
    using share_t = decltype(
        E::share(std::declval<typename E::template future<int>&&>()));
    template <typename E>
    using when_all_t = decltype(E::when_all(
        std::declval<std::vector<typename E::template shared_future<int>>>()));
    template <typename E>
    using then_t = decltype(E::then(
        std::declval<typename E::template future<void>>(),
        std::declval<int (*)()>()));
    template <typename E>
    using sync_wait_t = decltype(
        E::sync_wait(std::declval<typename E::template future<int>>()));
    template <typename E>
    using annotate_work_t = decltype(
        E::annotate_work(std::declval<minihpx::work_annotation const&>()));
    template <typename E>
    using trace_label_t = decltype(E::trace_label("x"));
    template <typename E>
    using skip_compute_t =
        std::enable_if_t<std::is_same_v<decltype(E::skip_compute()), bool>>;
    template <typename E>
    using name_t = std::enable_if_t<
        std::is_convertible_v<decltype(E::name()), char const*>>;

}    // namespace detail

template <typename E>
struct engine_traits
{
    static constexpr bool has_future =
        detail::detect<E, detail::future_t>::value;
    static constexpr bool has_shared_future =
        detail::detect<E, detail::shared_future_t>::value;
    static constexpr bool has_mutex =
        detail::detect<E, detail::mutex_t>::value;
    static constexpr bool has_launch =
        detail::detect<E, detail::launch_t>::value;
    static constexpr bool has_async =
        detail::detect<E, detail::async_t>::value;
    static constexpr bool has_policy_async =
        detail::detect<E, detail::async_policy_t>::value;
    static constexpr bool has_share =
        detail::detect<E, detail::share_t>::value;
    static constexpr bool has_when_all =
        detail::detect<E, detail::when_all_t>::value;
    static constexpr bool has_then =
        detail::detect<E, detail::then_t>::value;
    static constexpr bool has_sync_wait =
        detail::detect<E, detail::sync_wait_t>::value;
    static constexpr bool has_annotate_work =
        detail::detect<E, detail::annotate_work_t>::value;
    static constexpr bool has_trace_label =
        detail::detect<E, detail::trace_label_t>::value;
    static constexpr bool has_skip_compute =
        detail::detect<E, detail::skip_compute_t>::value;
    static constexpr bool has_name = detail::detect<E, detail::name_t>::value;

    static constexpr bool conforms = has_future && has_shared_future &&
        has_mutex && has_launch && has_async && has_policy_async &&
        has_share && has_when_all && has_then && has_sync_wait &&
        has_annotate_work && has_trace_label && has_skip_compute && has_name;
};

template <typename E>
inline constexpr bool is_engine_v = engine_traits<E>::conforms;

}    // namespace minihpx::engine
