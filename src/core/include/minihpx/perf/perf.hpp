// Umbrella header for the performance-counter framework.
#pragma once

#include <minihpx/perf/active_counters.hpp>
#include <minihpx/perf/basic_counters.hpp>
#include <minihpx/perf/counter.hpp>
#include <minihpx/perf/counter_name.hpp>
#include <minihpx/perf/counter_value.hpp>
#include <minihpx/perf/derived_counters.hpp>
#include <minihpx/perf/registry.hpp>
#include <minihpx/perf/thread_counters.hpp>
