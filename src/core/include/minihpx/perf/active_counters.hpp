// Active counter set + command-line driven session.
//
// Reproduces HPX's convenience layer (paper §IV, last paragraph):
//   --mh:print-counter=NAME            (repeatable; '*' wildcards ok)
//   --mh:print-counter-interval=MS     (periodic background sampling)
//   --mh:print-counter-destination=F   (file instead of stdout)
//   --mh:print-counter-format=csv|text
//   --mh:list-counters                 (enumerate registered types)
// plus the programmatic evaluate_active_counters()/
// reset_active_counters() pair the Inncabs harness calls around every
// sample, exactly as §V-D describes.
#pragma once

#include <minihpx/perf/counter.hpp>
#include <minihpx/perf/counter_handle.hpp>
#include <minihpx/perf/registry.hpp>
#include <minihpx/util/cli.hpp>

#include <atomic>
#include <condition_variable>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

namespace minihpx::perf {

class active_counters
{
public:
    // Expands wildcards and instantiates every counter. Names that fail
    // to instantiate are recorded in errors() and skipped.
    active_counters(counter_registry& registry,
        std::vector<std::string> const& names);

    std::size_t size() const noexcept { return counters_.size(); }
    bool empty() const noexcept { return counters_.empty(); }
    std::vector<std::string> const& errors() const noexcept
    {
        return errors_;
    }

    struct evaluation
    {
        std::string name;
        std::string unit;
        counter_value value;
    };

    // Evaluate all counters (optionally evaluate-and-reset). Statistics
    // counters are fed one sample first so they are never empty.
    std::vector<evaluation> evaluate(bool reset = false);

    // Allocation-free variant for periodic samplers: writes size()
    // values, in handles() order, into caller-provided storage (which
    // must hold at least size() elements). Names and units are fixed at
    // resolution time (see handles()), and every counter is a resolved
    // counter_handle, so the steady-state path does no string parsing,
    // no RTTI, and no heap work.
    void evaluate_into(std::span<counter_value> out, bool reset = false);

    void reset();

    // Pull one sample into every statistics counter (periodic sampler).
    // O(statistics counters) via pre-resolved handles.
    void sample_statistics();

    // Re-expand the construction names against the registry and resolve
    // any instances that were not present before (late-registered
    // counter types, grown wildcards). New handles are *appended* —
    // existing indices keep their meaning, so samplers can grow their
    // schemas in place. Returns the number of counters added. New
    // failures are appended to errors(); repeats are deduplicated.
    std::size_t refresh(counter_registry& registry);

    // Render evaluations; text is aligned "name,count,time[s],value"
    // lines (HPX console format), csv is one row per counter.
    void print(std::ostream& os, bool csv, bool reset,
        std::string_view annotation = {});
    void print_csv_header(std::ostream& os) const;

    std::vector<counter_handle> const& handles() const noexcept
    {
        return handles_;
    }

    // Shared-ownership view in handles() order (kept for pre-handle
    // callers; prefer handles()).
    std::vector<counter_ptr> const& counters() const noexcept
    {
        return counters_;
    }

private:
    void resolve_names(counter_registry& registry,
        std::vector<std::string> const& names, bool append_only);

    std::vector<std::string> names_;    // as given, wildcards intact
    std::vector<counter_handle> handles_;
    std::vector<counter_ptr> counters_;    // mirrors handles_
    std::unordered_set<std::string> resolved_full_names_;
    std::vector<std::string> errors_;
    std::unordered_set<std::string> seen_errors_;
    std::uint64_t start_ns_;
};

struct session_options
{
    std::vector<std::string> counter_names;
    double interval_ms = 0.0;    // 0: no background sampling
    std::string destination;     // empty: stdout
    bool csv = false;
    bool list_counters = false;
    bool print_at_shutdown = true;

    static session_options from_cli(util::cli_args const& args);
};

// Owns an active counter set, an optional sampling thread, and the
// output stream; installs itself as the process-global session so that
// evaluate_active_counters()/reset_active_counters() work (one global
// session at a time).
class counter_session
{
public:
    counter_session(counter_registry& registry, session_options options);
    ~counter_session();

    counter_session(counter_session const&) = delete;

    active_counters& counters() noexcept { return counters_; }
    bool empty() const noexcept { return counters_.empty(); }

    // Evaluate-and-print now (annotation lands in the output).
    void evaluate(std::string_view annotation = {}, bool reset = false);
    void reset();

    // Stop background sampling, print the final "shutdown" evaluation,
    // and flush. Idempotent; evaluate() afterwards is a no-op. Runs
    // automatically via runtime::at_shutdown *before* the runtime
    // tears down its workers, so the sampler thread can never observe
    // a half-destroyed scheduler (the final-sample race this fixes),
    // and again from the destructor for sessions without a runtime.
    void quiesce();

    static counter_session* global() noexcept;

    // Writes the list of registered counter types to os.
    static void list_counter_types(counter_registry const& registry,
        std::ostream& os);

private:
    void sampler_loop();
    void stop_sampler_thread();

    session_options options_;
    active_counters counters_;
    std::unique_ptr<std::ostream> owned_stream_;
    std::ostream* out_;
    bool header_written_ = false;
    std::mutex print_mutex_;

    std::mutex sampler_mutex_;
    std::condition_variable sampler_cv_;
    bool stop_sampler_ = false;
    std::thread sampler_;

    std::atomic<bool> quiesced_{false};
    void* hooked_runtime_ = nullptr;
    std::uint64_t shutdown_token_ = 0;
};

// HPX-equivalent free functions acting on the global session (no-ops
// when no session is active, so instrumented code runs unmodified
// without counters — the paper's "overhead only when measured" story).
void evaluate_active_counters(
    bool reset = false, std::string_view annotation = {});
void reset_active_counters();

}    // namespace minihpx::perf
