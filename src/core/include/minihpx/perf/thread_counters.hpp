// Thread-manager counter bindings.
//
// Registers the /threads{...}, /threadqueue{...} and /runtime{...}
// counter types against a live scheduler/runtime. These are the
// software counters the paper's metrics are built from (§V-C):
//
//   Task Duration        /threads{locality#0/total}/time/average
//   Task Overhead        /threads{locality#0/total}/time/average-overhead
//   Task Time            /threads{locality#0/total}/time/cumulative
//   Scheduling Overhead  /threads{locality#0/total}/time/cumulative-overhead
//
// Every counter also exists per OS worker thread:
//   /threads{locality#0/worker-thread#N}/...
#pragma once

#include <minihpx/perf/registry.hpp>
#include <minihpx/runtime/runtime.hpp>
#include <minihpx/runtime/scheduler.hpp>

namespace minihpx::perf {

// Registers all scheduler-backed counter types. The scheduler must
// outlive the registry entries (unregister via remove_thread_counters
// or destroy the registry first).
void register_thread_counters(counter_registry& registry, scheduler& sched);
void remove_thread_counters(counter_registry& registry);

// /runtime{locality#0/total}/uptime and memory counters.
void register_runtime_counters(counter_registry& registry, runtime& rt);
void remove_runtime_counters(counter_registry& registry);

// Convenience: both of the above against the global runtime.
void register_all_runtime_counters(counter_registry& registry, runtime& rt);

}    // namespace minihpx::perf
