// Resolve-once counter handle: the O(1) hot-path view of a counter.
//
// counter_registry::resolve() pays the full cost exactly once — name
// parse, type lookup, instance construction, and the statistics-kind
// downcast — and returns a handle that caches the results. Everything
// afterwards (evaluate, reset, sample_statistics) is a virtual call on
// cached pointers: no string parsing, no registry lock, no RTTI. Hot
// paths (the telemetry sampler, adaptive policies, benchmark loops)
// hold handles; names appear only at configuration boundaries.
//
// A handle shares ownership of the counter instance, so it stays valid
// after the registry's type is unregistered or other handles are gone.
#pragma once

#include <minihpx/perf/counter.hpp>
#include <minihpx/perf/counter_value.hpp>
#include <minihpx/perf/derived_counters.hpp>

#include <utility>

namespace minihpx::perf {

class counter_handle
{
public:
    counter_handle() noexcept = default;

    // Built by counter_registry::resolve(); the statistics interface is
    // downcast-cached here so sample_statistics() never touches RTTI.
    explicit counter_handle(counter_ptr counter) noexcept
      : counter_(std::move(counter))
      , statistics_(dynamic_cast<statistics_counter*>(counter_.get()))
    {
    }

    explicit operator bool() const noexcept { return counter_ != nullptr; }

    // Evaluate through the cached instance pointer; optionally snapshot
    // the underlying sources in the same step (evaluate-and-reset, the
    // per-sample pattern the paper's harness uses).
    counter_value evaluate(bool reset = false) const
    {
        return counter_->get_value(reset);
    }

    // Reset the *counter* (snapshot its sources); the handle itself
    // stays resolved and usable.
    void reset() const { counter_->reset(); }

    counter_info const& info() const noexcept { return counter_->info(); }

    // Statistics-kind counters need periodic sample() pulls to fill
    // their rolling window; for every other kind this is a null check
    // and nothing else.
    bool is_statistics() const noexcept { return statistics_ != nullptr; }

    void sample_statistics() const
    {
        if (statistics_)
            statistics_->sample();
    }

    // Shared-ownership escape hatch for pre-handle interfaces.
    counter_ptr const& get() const noexcept { return counter_; }

private:
    counter_ptr counter_;
    statistics_counter* statistics_ = nullptr;
};

}    // namespace minihpx::perf
