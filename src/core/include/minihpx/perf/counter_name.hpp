// HPX performance-counter name grammar.
//
//   /object{parentinstance#parentindex/instance#instanceindex}/counter@params
//
// Examples from the paper:
//   /threads{locality#0/total}/time/average
//   /threads{locality#0/worker-thread#1}/count/cumulative
//   /papi{locality#0/total}/OFFCORE_REQUESTS:ALL_DATA_RD
//   /arithmetics/add@/threads{locality#0/total}/time/average,...
//
// Omitted instance braces default to {locality#H/total} where H is
// this_locality() — 0 in a single-node process, the node's id once a
// net::locality has claimed one. Both indices may be '*' (wildcard):
// the instance wildcard expands to one counter per existing instance
// (worker threads), the parent wildcard to one per known locality —
// across the network when a counter federation is installed.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace minihpx::perf {

struct counter_path
{
    std::string object;                      // "threads", "papi", ...
    std::string parent_instance = "locality";
    std::int64_t parent_index = 0;
    bool parent_wildcard = false;            // locality#*
    std::string instance = "total";          // "total" | "worker-thread" ...
    std::int64_t instance_index = -1;        // -1: no index given
    bool instance_wildcard = false;          // instance#*
    std::string counter;                     // "time/average", may contain ':'
    std::string parameters;                  // after '@', verbatim

    // "/object/counter" — the registry lookup key.
    std::string type_key() const;

    // Canonical full instance name (always prints the braces).
    std::string full_name() const;

    bool operator==(counter_path const&) const = default;
};

// Parse a counter name; returns std::nullopt (with *error filled when
// non-null) on malformed input.
std::optional<counter_path> parse_counter_name(
    std::string_view name, std::string* error = nullptr);

// ---- locality identity --------------------------------------------------
//
// The id this process's counters are tagged with. Every counter name
// parsed without explicit instance braces lands on this locality, and
// the registry treats any other id as remote. Single-node processes
// never touch it (id 0, the paper's locality#0); minihpx::net claims an
// id per process at startup, before any counters are resolved.
std::uint32_t this_locality() noexcept;
void set_this_locality(std::uint32_t id) noexcept;

// The one place "locality#N" is spelled. Code assembling counter names
// must use these instead of hardcoding "locality#0" so names carry real
// locality ids on multi-node runs.
std::string locality_prefix(std::uint32_t id);
// "{locality#N/instance}" — the full brace group for name formatting.
std::string locality_instance(
    std::uint32_t id, std::string_view instance = "total");

}    // namespace minihpx::perf
