// HPX performance-counter name grammar.
//
//   /object{parentinstance#parentindex/instance#instanceindex}/counter@params
//
// Examples from the paper:
//   /threads{locality#0/total}/time/average
//   /threads{locality#0/worker-thread#1}/count/cumulative
//   /papi{locality#0/total}/OFFCORE_REQUESTS:ALL_DATA_RD
//   /arithmetics/add@/threads{locality#0/total}/time/average,...
//
// Omitted instance braces default to {locality#0/total}. The instance
// index may be '*' (wildcard), expanded by the registry into one
// counter per existing instance.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace minihpx::perf {

struct counter_path
{
    std::string object;                      // "threads", "papi", ...
    std::string parent_instance = "locality";
    std::int64_t parent_index = 0;
    std::string instance = "total";          // "total" | "worker-thread" ...
    std::int64_t instance_index = -1;        // -1: no index given
    bool instance_wildcard = false;          // instance#*
    std::string counter;                     // "time/average", may contain ':'
    std::string parameters;                  // after '@', verbatim

    // "/object/counter" — the registry lookup key.
    std::string type_key() const;

    // Canonical full instance name (always prints the braces).
    std::string full_name() const;

    bool operator==(counter_path const&) const = default;
};

// Parse a counter name; returns std::nullopt (with *error filled when
// non-null) on malformed input.
std::optional<counter_path> parse_counter_name(
    std::string_view name, std::string* error = nullptr);

}    // namespace minihpx::perf
