// Counter-type registry: the discovery and instantiation hub.
//
// Subsystems register counter *types* (e.g. "/threads/time/average")
// with a factory; applications create counter *instances* by full name.
// The registry also owns the built-in derived types:
//   /arithmetics/{add,subtract,multiply,divide,min,max,mean}@c1,c2,...
//   /statistics/{average,stddev,min,max,median}@counter[,window]
// and expands instance wildcards ("worker-thread#*") into one instance
// per existing worker, which is how --mh:print-counter gives per-OS-
// thread breakdowns (paper §V-C measures per-OS-thread totals).
#pragma once

#include <minihpx/perf/counter.hpp>
#include <minihpx/perf/counter_handle.hpp>
#include <minihpx/perf/counter_name.hpp>

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace minihpx::perf {

class counter_registry
{
public:
    struct type_info
    {
        std::string type_key;    // "/object/counter"
        counter_kind kind = counter_kind::raw;
        std::string unit_of_measure;
        std::string helptext;
        // Build an instance for a concrete (non-wildcard) path.
        std::function<counter_ptr(counter_path const&)> create;
        // Number of indexable instances (workers); 0 = only "total".
        std::function<std::uint64_t()> instance_count;
    };

    // Registers the built-in /arithmetics and /statistics types.
    counter_registry();

    void register_type(type_info info);
    bool unregister_type(std::string const& type_key);
    bool contains(std::string const& type_key) const;

    // Create a counter instance by full name; nullptr + *error on
    // failure. Wildcard names are rejected here (use expand() first).
    counter_ptr create(std::string_view name,
        std::string* error = nullptr) const;
    counter_ptr create(counter_path const& path,
        std::string* error = nullptr) const;

    // Resolve-once handles (counter_handle.hpp): parse + instantiate +
    // downcast happen here; everything after is O(1). An empty handle +
    // *error on failure. Hot paths should hold handles, not names.
    counter_handle resolve(std::string_view name,
        std::string* error = nullptr) const;
    counter_handle resolve(counter_path const& path,
        std::string* error = nullptr) const;

    // Expand wildcards and resolve every concrete instance. Failures
    // are skipped and appended to *errors as "name: reason" strings.
    std::vector<counter_handle> resolve_all(std::string_view name,
        std::vector<std::string>* errors = nullptr) const;

    // Expand a (possibly wildcard) name into concrete instance paths.
    std::vector<counter_path> expand(counter_path const& path) const;

    // All registered types, sorted by key (for --mh:list-counters).
    std::vector<type_info> list() const;

    // Bumped on every register/unregister; lock-free to read, so
    // periodic samplers can poll it per tick. The telemetry sampler
    // expands wildcards at construction and re-expands whenever the
    // version moves, which is how late-registered counters (e.g. a PAPI
    // engine brought up mid-run) join an already-running session.
    std::uint64_t version() const noexcept
    {
        return version_.load(std::memory_order_acquire);
    }

    // The process-wide default registry.
    static counter_registry& instance();

private:
    counter_ptr create_arithmetic(counter_path const& path,
        std::string* error) const;
    counter_ptr create_statistics(counter_path const& path,
        std::string* error) const;

    mutable std::mutex mutex_;
    std::map<std::string, type_info> types_;
    std::atomic<std::uint64_t> version_{0};
};

}    // namespace minihpx::perf
