// Counter-type registry: the discovery and instantiation hub.
//
// Subsystems register counter *types* (e.g. "/threads/time/average")
// with a factory; applications create counter *instances* by full name.
// The registry also owns the built-in derived types:
//   /arithmetics/{add,subtract,multiply,divide,min,max,mean}@c1,c2,...
//   /statistics/{average,stddev,min,max,median}@counter[,window]
// and expands instance wildcards ("worker-thread#*") into one instance
// per existing worker, which is how --mh:print-counter gives per-OS-
// thread breakdowns (paper §V-C measures per-OS-thread totals).
#pragma once

#include <minihpx/perf/counter.hpp>
#include <minihpx/perf/counter_handle.hpp>
#include <minihpx/perf/counter_name.hpp>

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace minihpx::perf {

// Federation seam: how a counter registry reaches counters that live on
// *other* localities. minihpx::net installs one per registry; without a
// provider the registry is single-node and any non-local locality id in
// a counter name is an error. Implementations must outlive their
// registration (clear the provider first).
class locality_provider
{
public:
    virtual ~locality_provider() = default;

    // Localities reachable right now, including the local one.
    virtual std::vector<std::uint32_t> known_localities() const = 0;

    // Expand an instance wildcard (`worker-thread#*`) on the path's
    // home locality — only that registry knows its own worker count.
    // The path's locality is concrete and remote. Unreachable peers
    // yield an empty vector.
    virtual std::vector<counter_path> expand_remote(
        counter_path const& path) = 0;

    // Build a counter whose evaluations are served by the path's home
    // locality (a network proxy). nullptr + *error on failure.
    virtual counter_ptr create_remote(
        counter_path const& path, std::string* error) = 0;
};

class counter_registry
{
public:
    struct type_info
    {
        std::string type_key;    // "/object/counter"
        counter_kind kind = counter_kind::raw;
        std::string unit_of_measure;
        std::string helptext;
        // Build an instance for a concrete (non-wildcard) path.
        std::function<counter_ptr(counter_path const&)> create;
        // Number of indexable instances (workers); 0 = only "total".
        std::function<std::uint64_t()> instance_count;
    };

    // Registers the built-in /arithmetics and /statistics types.
    counter_registry();

    void register_type(type_info info);
    bool unregister_type(std::string const& type_key);
    bool contains(std::string const& type_key) const;

    // Create a counter instance by full name; nullptr + *error on
    // failure. Wildcard names are rejected here (use expand() first).
    counter_ptr create(std::string_view name,
        std::string* error = nullptr) const;
    counter_ptr create(counter_path const& path,
        std::string* error = nullptr) const;

    // Resolve-once handles (counter_handle.hpp): parse + instantiate +
    // downcast happen here; everything after is O(1). An empty handle +
    // *error on failure. Hot paths should hold handles, not names.
    counter_handle resolve(std::string_view name,
        std::string* error = nullptr) const;
    counter_handle resolve(counter_path const& path,
        std::string* error = nullptr) const;

    // Expand wildcards and resolve every concrete instance. Failures
    // are skipped and appended to *errors as "name: reason" strings.
    std::vector<counter_handle> resolve_all(std::string_view name,
        std::vector<std::string>* errors = nullptr) const;

    // Expand a (possibly wildcard) name into concrete instance paths.
    std::vector<counter_path> expand(counter_path const& path) const;

    // All registered types, sorted by key (for --mh:list-counters).
    std::vector<type_info> list() const;

    // Bumped on every register/unregister; lock-free to read, so
    // periodic samplers can poll it per tick. The telemetry sampler
    // expands wildcards at construction and re-expands whenever the
    // version moves, which is how late-registered counters (e.g. a PAPI
    // engine brought up mid-run) join an already-running session.
    std::uint64_t version() const noexcept
    {
        return version_.load(std::memory_order_acquire);
    }

    // ---- multi-locality federation -----------------------------------
    // The locality whose counters this registry serves locally. Follows
    // the process-wide this_locality() unless overridden — in-process
    // multi-locality setups (tests, --mode=threads) give each locality
    // its own registry with its own id.
    std::uint32_t local_locality() const noexcept
    {
        return local_locality_.load(std::memory_order_relaxed);
    }
    void set_local_locality(std::uint32_t id) noexcept
    {
        local_locality_.store(id, std::memory_order_relaxed);
    }

    // Install (nullptr: remove) the federation provider. With one
    // installed, expand() fans `locality#*` out across
    // known_localities() and create() routes non-local locality ids to
    // create_remote(). Bumps version() so running samplers re-expand.
    void set_locality_provider(locality_provider* provider);
    locality_provider* get_locality_provider() const;

    // A locality joined or died: bump version() so wildcard consumers
    // (telemetry sampler, active_counters::refresh) re-expand.
    void notify_topology_change() noexcept
    {
        version_.fetch_add(1, std::memory_order_release);
    }

    // The process-wide default registry.
    static counter_registry& instance();

private:
    counter_ptr create_arithmetic(counter_path const& path,
        std::string* error) const;
    counter_ptr create_statistics(counter_path const& path,
        std::string* error) const;

    mutable std::mutex mutex_;
    std::map<std::string, type_info> types_;
    std::atomic<std::uint64_t> version_{0};
    std::atomic<std::uint32_t> local_locality_;
    std::atomic<locality_provider*> provider_{nullptr};
};

}    // namespace minihpx::perf
