// Concrete counter building blocks.
//
// All of these pull from std::function sources so any subsystem
// (scheduler, papi engine, simulator) can expose counters without
// depending on this module. Reset takes base snapshots; underlying
// instrumentation is never mutated.
#pragma once

#include <minihpx/perf/counter.hpp>
#include <minihpx/util/spinlock.hpp>

#include <cstdint>
#include <functional>
#include <utility>

namespace minihpx::perf {

using value_source = std::function<double()>;
using count_source = std::function<std::uint64_t()>;

// Instantaneous value; reset is a no-op (raw gauges have no epoch).
class gauge_counter final : public counter
{
public:
    gauge_counter(counter_info info, value_source source)
      : info_(std::move(info))
      , source_(std::move(source))
    {
    }

    counter_value get_value(bool reset = false) override;
    void reset() override {}
    counter_info const& info() const noexcept override { return info_; }

private:
    counter_info info_;
    value_source source_;
    std::int64_t invocations_ = 0;
};

// Monotonic cumulative source reported relative to the last reset.
class delta_counter final : public counter
{
public:
    delta_counter(counter_info info, value_source source)
      : info_(std::move(info))
      , source_(std::move(source))
    {
    }

    counter_value get_value(bool reset = false) override;
    void reset() override;
    counter_info const& info() const noexcept override { return info_; }

private:
    counter_info info_;
    value_source source_;
    util::spinlock lock_;
    double base_ = 0.0;
    std::int64_t invocations_ = 0;
};

// (numerator delta) / (denominator delta): average task duration is
// exec_time/tasks, idle-rate is idle/total, etc. `scale` multiplies the
// ratio (e.g. 10000 for HPX's 0.01% idle-rate convention).
class ratio_counter final : public counter
{
public:
    ratio_counter(counter_info info, value_source numerator,
        value_source denominator, double scale = 1.0)
      : info_(std::move(info))
      , numerator_(std::move(numerator))
      , denominator_(std::move(denominator))
      , scale_(scale)
    {
    }

    counter_value get_value(bool reset = false) override;
    void reset() override;
    counter_info const& info() const noexcept override { return info_; }

private:
    counter_info info_;
    value_source numerator_;
    value_source denominator_;
    double scale_;
    util::spinlock lock_;
    double num_base_ = 0.0;
    double den_base_ = 0.0;
    std::int64_t invocations_ = 0;
};

// Seconds since construction or last reset.
class elapsed_time_counter final : public counter
{
public:
    explicit elapsed_time_counter(counter_info info)
      : info_(std::move(info))
      , start_ns_(counter_clock_ns())
    {
    }

    counter_value get_value(bool reset = false) override;
    void reset() override;
    counter_info const& info() const noexcept override { return info_; }

private:
    counter_info info_;
    std::uint64_t start_ns_;
    std::int64_t invocations_ = 0;
};

}    // namespace minihpx::perf
