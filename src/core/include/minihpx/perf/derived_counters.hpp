// Derived counters: arithmetic over other counters and rolling
// statistics of a sampled counter.
//
// HPX exposes these as /arithmetics/{add,subtract,multiply,divide}@c1,c2
// and /statistics/{average,stddev,min,max,median}@counter,window. They
// are what turns raw counts into the paper's metrics (e.g. summing the
// three OFFCORE_REQUESTS event counters before the bandwidth formula).
#pragma once

#include <minihpx/perf/counter.hpp>
#include <minihpx/util/spinlock.hpp>

#include <cstddef>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace minihpx::perf {

enum class arithmetic_op : std::uint8_t
{
    add,
    subtract,
    multiply,
    divide,
    min,
    max,
    mean,
};

// Returns nullptr-equivalent std::nullopt on unknown name.
std::optional<arithmetic_op> parse_arithmetic_op(std::string_view name);

class arithmetic_counter final : public counter
{
public:
    arithmetic_counter(
        counter_info info, arithmetic_op op, std::vector<counter_ptr> inputs);

    counter_value get_value(bool reset = false) override;
    void reset() override;
    counter_info const& info() const noexcept override { return info_; }

    std::vector<counter_ptr> const& inputs() const noexcept
    {
        return inputs_;
    }

private:
    counter_info info_;
    arithmetic_op op_;
    std::vector<counter_ptr> inputs_;
    std::int64_t invocations_ = 0;
};

enum class statistic : std::uint8_t
{
    average,
    stddev,
    min,
    max,
    median,
};

std::optional<statistic> parse_statistic(std::string_view name);

// Rolling-window statistic over samples of an underlying counter. The
// sampler (active_counters' background thread, or the application) must
// call sample() periodically; get_value() summarizes the window.
class statistics_counter final : public counter
{
public:
    statistics_counter(counter_info info, statistic stat,
        counter_ptr underlying, std::size_t window);

    // Pull one sample from the underlying counter into the window.
    void sample();

    counter_value get_value(bool reset = false) override;
    void reset() override;
    counter_info const& info() const noexcept override { return info_; }

    counter_ptr const& underlying() const noexcept { return underlying_; }

private:
    counter_info info_;
    statistic stat_;
    counter_ptr underlying_;
    std::size_t window_;
    util::spinlock lock_;
    std::deque<double> samples_;
    std::int64_t invocations_ = 0;
};

}    // namespace minihpx::perf
