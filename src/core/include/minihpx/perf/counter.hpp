// The counter interface every performance counter implements.
//
// Counters are pull-based: get_value() computes the current value from
// underlying instrumentation; reset() (or get_value(reset=true), the
// hpx::evaluate_and_reset pattern the paper's harness uses per sample)
// snapshots the underlying cumulative sources so subsequent evaluations
// report deltas relative to the snapshot. The instrumentation itself is
// never cleared — multiple counters can observe the same source with
// independent reset epochs.
#pragma once

#include <minihpx/perf/counter_value.hpp>

#include <memory>
#include <string>

namespace minihpx::perf {

enum class counter_kind : std::uint8_t
{
    raw,                        // instantaneous value
    monotonically_increasing,   // cumulative count
    average_count,              // ratio of two cumulative sources
    average_timer,              // like average_count, value is seconds/ns
    elapsed_time,               // seconds since start/reset
    aggregating,                // combination of other counters
    histogram,                  // distribution summary
};

char const* to_string(counter_kind kind) noexcept;

struct counter_info
{
    std::string full_name;         // canonical instance name
    counter_kind kind = counter_kind::raw;
    std::string unit_of_measure;   // e.g. "ns", "0.01%", "bytes"
    std::string helptext;
};

class counter
{
public:
    virtual ~counter() = default;

    // Evaluate; optionally reset in the same atomic step.
    virtual counter_value get_value(bool reset = false) = 0;

    virtual void reset() = 0;

    virtual counter_info const& info() const noexcept = 0;
};

using counter_ptr = std::shared_ptr<counter>;

// Timestamp helper shared by implementations (steady clock, ns).
std::uint64_t counter_clock_ns() noexcept;

}    // namespace minihpx::perf
