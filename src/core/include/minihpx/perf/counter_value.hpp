// Value record returned by every counter evaluation.
//
// Mirrors hpx::performance_counters::counter_value: a timestamped
// number with a scaling factor and a status, uniform across software
// and hardware counters (paper §IV: "since all counters expose their
// data using the same API, any code consuming counter data can be
// utilized to access arbitrary system information").
#pragma once

#include <cstdint>
#include <string>

namespace minihpx::perf {

enum class counter_status : std::uint8_t
{
    valid_data,       // value is meaningful
    new_data,         // first sample after a reset
    invalid_data,     // counter exists but cannot produce data now
    not_available,    // underlying source unavailable
};

char const* to_string(counter_status status) noexcept;

struct counter_value
{
    std::uint64_t time_ns = 0;    // sample timestamp (steady clock)
    std::int64_t count = 0;       // evaluation sequence number
    double value = 0.0;           // raw value
    double scaling = 1.0;         // value is reported as value*scaling
    counter_status status = counter_status::valid_data;

    double get() const noexcept { return value * scaling; }

    bool valid() const noexcept
    {
        return status == counter_status::valid_data ||
            status == counter_status::new_data;
    }
};

}    // namespace minihpx::perf
