#include <minihpx/perf/basic_counters.hpp>

#include <chrono>
#include <mutex>

namespace minihpx::perf {

char const* to_string(counter_status status) noexcept
{
    switch (status)
    {
    case counter_status::valid_data:
        return "valid";
    case counter_status::new_data:
        return "new";
    case counter_status::invalid_data:
        return "invalid";
    case counter_status::not_available:
        return "not-available";
    }
    return "?";
}

char const* to_string(counter_kind kind) noexcept
{
    switch (kind)
    {
    case counter_kind::raw:
        return "raw";
    case counter_kind::monotonically_increasing:
        return "monotonically-increasing";
    case counter_kind::average_count:
        return "average-count";
    case counter_kind::average_timer:
        return "average-timer";
    case counter_kind::elapsed_time:
        return "elapsed-time";
    case counter_kind::aggregating:
        return "aggregating";
    case counter_kind::histogram:
        return "histogram";
    }
    return "?";
}

std::uint64_t counter_clock_ns() noexcept
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

counter_value gauge_counter::get_value(bool)
{
    counter_value v;
    v.time_ns = counter_clock_ns();
    v.count = ++invocations_;
    v.value = source_();
    return v;
}

counter_value delta_counter::get_value(bool reset)
{
    std::lock_guard guard(lock_);
    double const current = source_();
    counter_value v;
    v.time_ns = counter_clock_ns();
    v.count = ++invocations_;
    v.value = current - base_;
    if (reset)
    {
        base_ = current;
        v.status = counter_status::new_data;
    }
    return v;
}

void delta_counter::reset()
{
    std::lock_guard guard(lock_);
    base_ = source_();
}

counter_value ratio_counter::get_value(bool reset)
{
    std::lock_guard guard(lock_);
    double const num = numerator_();
    double const den = denominator_();
    counter_value v;
    v.time_ns = counter_clock_ns();
    v.count = ++invocations_;
    double const dden = den - den_base_;
    if (dden > 0.0)
        v.value = (num - num_base_) / dden * scale_;
    else
        v.status = counter_status::invalid_data;
    if (reset)
    {
        num_base_ = num;
        den_base_ = den;
        if (v.status == counter_status::valid_data)
            v.status = counter_status::new_data;
    }
    return v;
}

void ratio_counter::reset()
{
    std::lock_guard guard(lock_);
    num_base_ = numerator_();
    den_base_ = denominator_();
}

counter_value elapsed_time_counter::get_value(bool reset)
{
    std::uint64_t const now = counter_clock_ns();
    counter_value v;
    v.time_ns = now;
    v.count = ++invocations_;
    v.value = static_cast<double>(now - start_ns_) * 1e-9;
    if (reset)
    {
        start_ns_ = now;
        v.status = counter_status::new_data;
    }
    return v;
}

void elapsed_time_counter::reset()
{
    start_ns_ = counter_clock_ns();
}

}    // namespace minihpx::perf
