#include <minihpx/perf/derived_counters.hpp>

#include <minihpx/util/assert.hpp>

#include <algorithm>
#include <cmath>
#include <mutex>
#include <optional>

namespace minihpx::perf {

std::optional<arithmetic_op> parse_arithmetic_op(std::string_view name)
{
    if (name == "add")
        return arithmetic_op::add;
    if (name == "subtract")
        return arithmetic_op::subtract;
    if (name == "multiply")
        return arithmetic_op::multiply;
    if (name == "divide")
        return arithmetic_op::divide;
    if (name == "min")
        return arithmetic_op::min;
    if (name == "max")
        return arithmetic_op::max;
    if (name == "mean")
        return arithmetic_op::mean;
    return std::nullopt;
}

arithmetic_counter::arithmetic_counter(
    counter_info info, arithmetic_op op, std::vector<counter_ptr> inputs)
  : info_(std::move(info))
  , op_(op)
  , inputs_(std::move(inputs))
{
    MINIHPX_ASSERT_MSG(!inputs_.empty(), "arithmetic counter needs inputs");
}

counter_value arithmetic_counter::get_value(bool reset)
{
    counter_value out;
    out.time_ns = counter_clock_ns();
    out.count = ++invocations_;

    bool first = true;
    double acc = 0.0;
    for (auto const& input : inputs_)
    {
        counter_value const v = input->get_value(reset);
        if (!v.valid())
        {
            out.status = counter_status::invalid_data;
            return out;
        }
        double const x = v.get();
        if (first)
        {
            acc = x;
            first = false;
            continue;
        }
        switch (op_)
        {
        case arithmetic_op::add:
        case arithmetic_op::mean:
            acc += x;
            break;
        case arithmetic_op::subtract:
            acc -= x;
            break;
        case arithmetic_op::multiply:
            acc *= x;
            break;
        case arithmetic_op::divide:
            if (x == 0.0)
            {
                out.status = counter_status::invalid_data;
                return out;
            }
            acc /= x;
            break;
        case arithmetic_op::min:
            acc = std::min(acc, x);
            break;
        case arithmetic_op::max:
            acc = std::max(acc, x);
            break;
        }
    }
    if (op_ == arithmetic_op::mean)
        acc /= static_cast<double>(inputs_.size());
    out.value = acc;
    return out;
}

void arithmetic_counter::reset()
{
    for (auto const& input : inputs_)
        input->reset();
}

std::optional<statistic> parse_statistic(std::string_view name)
{
    if (name == "average")
        return statistic::average;
    if (name == "stddev")
        return statistic::stddev;
    if (name == "min")
        return statistic::min;
    if (name == "max")
        return statistic::max;
    if (name == "median")
        return statistic::median;
    return std::nullopt;
}

statistics_counter::statistics_counter(counter_info info, statistic stat,
    counter_ptr underlying, std::size_t window)
  : info_(std::move(info))
  , stat_(stat)
  , underlying_(std::move(underlying))
  , window_(window == 0 ? 1 : window)
{
    MINIHPX_ASSERT(underlying_ != nullptr);
}

void statistics_counter::sample()
{
    counter_value const v = underlying_->get_value(false);
    if (!v.valid())
        return;
    std::lock_guard guard(lock_);
    samples_.push_back(v.get());
    while (samples_.size() > window_)
        samples_.pop_front();
}

counter_value statistics_counter::get_value(bool reset)
{
    counter_value out;
    out.time_ns = counter_clock_ns();
    out.count = ++invocations_;

    std::lock_guard guard(lock_);
    if (samples_.empty())
    {
        out.status = counter_status::invalid_data;
        return out;
    }

    switch (stat_)
    {
    case statistic::average:
    case statistic::stddev:
    {
        double sum = 0.0;
        for (double x : samples_)
            sum += x;
        double const mean = sum / static_cast<double>(samples_.size());
        if (stat_ == statistic::average)
        {
            out.value = mean;
        }
        else if (samples_.size() < 2)
        {
            out.value = 0.0;
        }
        else
        {
            double acc = 0.0;
            for (double x : samples_)
                acc += (x - mean) * (x - mean);
            out.value =
                std::sqrt(acc / static_cast<double>(samples_.size() - 1));
        }
        break;
    }
    case statistic::min:
        out.value = *std::min_element(samples_.begin(), samples_.end());
        break;
    case statistic::max:
        out.value = *std::max_element(samples_.begin(), samples_.end());
        break;
    case statistic::median:
    {
        std::vector<double> sorted(samples_.begin(), samples_.end());
        std::sort(sorted.begin(), sorted.end());
        std::size_t const mid = sorted.size() / 2;
        out.value = sorted.size() % 2 ? sorted[mid] :
                                        (sorted[mid - 1] + sorted[mid]) / 2.0;
        break;
    }
    }

    if (reset)
    {
        samples_.clear();
        out.status = counter_status::new_data;
    }
    return out;
}

void statistics_counter::reset()
{
    std::lock_guard guard(lock_);
    samples_.clear();
}

}    // namespace minihpx::perf
