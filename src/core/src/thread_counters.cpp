#include <minihpx/perf/thread_counters.hpp>

#include <minihpx/detail/frame_pool.hpp>
#include <minihpx/perf/basic_counters.hpp>

#include <fstream>
#include <functional>
#include <string>

namespace minihpx::perf {

namespace {

    // Per-worker or total selector for one statistic.
    using stat_selector =
        std::function<double(detail::worker::stats const&)>;

    double sum_over_workers(scheduler& sched, stat_selector const& sel)
    {
        double total = 0.0;
        for (unsigned i = 0; i < sched.num_workers(); ++i)
            total += sel(sched.get_worker(i).get_stats());
        return total;
    }

    // Resolve a counter path to a cumulative source over `sel`.
    value_source make_source(
        scheduler& sched, counter_path const& path, stat_selector sel)
    {
        if (path.instance == "worker-thread" && path.instance_index >= 0)
        {
            auto const idx = static_cast<unsigned>(path.instance_index);
            if (idx >= sched.num_workers())
                return nullptr;
            return [&sched, idx, sel = std::move(sel)] {
                return sel(sched.get_worker(idx).get_stats());
            };
        }
        if (path.instance == "total")
        {
            return [&sched, sel = std::move(sel)] {
                return sum_over_workers(sched, sel);
            };
        }
        return nullptr;
    }

    counter_info make_info(counter_path const& path, counter_kind kind,
        std::string unit, std::string help)
    {
        counter_info info;
        info.full_name = path.full_name();
        info.kind = kind;
        info.unit_of_measure = std::move(unit);
        info.helptext = std::move(help);
        return info;
    }

    // Registration helpers -------------------------------------------------

    void register_delta(counter_registry& registry, scheduler& sched,
        std::string key, std::string unit, std::string help,
        stat_selector sel)
    {
        counter_registry::type_info t;
        t.type_key = std::move(key);
        t.kind = counter_kind::monotonically_increasing;
        t.unit_of_measure = unit;
        t.helptext = std::move(help);
        t.instance_count = [&sched] {
            return static_cast<std::uint64_t>(sched.num_workers());
        };
        t.create = [&sched, sel = std::move(sel), unit,
                       kind = t.kind](counter_path const& path) -> counter_ptr {
            value_source source = make_source(sched, path, sel);
            if (!source)
                return nullptr;
            return std::make_shared<delta_counter>(
                make_info(path, kind, unit, ""), std::move(source));
        };
        registry.register_type(std::move(t));
    }

    void register_ratio(counter_registry& registry, scheduler& sched,
        std::string key, std::string unit, std::string help,
        stat_selector numerator, stat_selector denominator,
        double scale = 1.0)
    {
        counter_registry::type_info t;
        t.type_key = std::move(key);
        t.kind = counter_kind::average_timer;
        t.unit_of_measure = unit;
        t.helptext = std::move(help);
        t.instance_count = [&sched] {
            return static_cast<std::uint64_t>(sched.num_workers());
        };
        t.create = [&sched, numerator = std::move(numerator),
                       denominator = std::move(denominator), unit, scale,
                       kind = t.kind](counter_path const& path) -> counter_ptr {
            value_source num = make_source(sched, path, numerator);
            value_source den = make_source(sched, path, denominator);
            if (!num || !den)
                return nullptr;
            return std::make_shared<ratio_counter>(
                make_info(path, kind, unit, ""), std::move(num),
                std::move(den), scale);
        };
        registry.register_type(std::move(t));
    }

    void register_gauge(counter_registry& registry, std::string key,
        std::string unit, std::string help, value_source source,
        std::function<std::uint64_t()> instances = nullptr)
    {
        counter_registry::type_info t;
        t.type_key = std::move(key);
        t.kind = counter_kind::raw;
        t.unit_of_measure = unit;
        t.helptext = std::move(help);
        t.instance_count = std::move(instances);
        t.create = [source = std::move(source), unit,
                       kind = t.kind](counter_path const& path) -> counter_ptr {
            return std::make_shared<gauge_counter>(
                make_info(path, kind, unit, ""), source);
        };
        registry.register_type(std::move(t));
    }

    char const* const thread_counter_keys[] = {
        "/threads/count/cumulative",
        "/threads/count/cumulative-spawned",
        "/threads/time/average",
        "/threads/time/average-overhead",
        "/threads/time/cumulative",
        "/threads/time/cumulative-overhead",
        "/threads/idle-rate",
        "/threads/count/stolen",
        "/threads/count/steal-attempts",
        "/threads/steal/same-domain",
        "/threads/steal/cross-domain",
        "/threads/count/pending-misses",
        "/threads/count/suspensions",
        "/threads/count/yields",
        "/threads/count/instantaneous/pending",
        "/threads/count/instantaneous/active",
        "/threads/count/instantaneous/suspended",
        "/threads/count/objects",
        "/threads/time/median",
        "/threadqueue/length",
    };

    char const* const runtime_counter_keys[] = {
        "/runtime/uptime",
        "/runtime/memory/resident",
        "/runtime/memory/virtual",
        "/runtime/memory/frame-recycle-hits",
        "/runtime/memory/allocations",
        "/runtime/count/tasks-alive",
    };

    double read_statm_pages(int field)
    {
        std::ifstream statm("/proc/self/statm");
        double value = 0.0;
        for (int i = 0; i <= field && (statm >> value); ++i)
        {
        }
        return value * 4096.0;
    }

}    // namespace

void register_thread_counters(counter_registry& registry, scheduler& sched)
{
    using stats = detail::worker::stats;
    auto load = [](std::atomic<std::uint64_t> const& a) {
        return static_cast<double>(a.load(std::memory_order_relaxed));
    };

    register_delta(registry, sched, "/threads/count/cumulative", "",
        "number of HPX threads (tasks) executed to completion",
        [load](stats const& s) { return load(s.tasks_executed); });

    register_delta(registry, sched, "/threads/count/cumulative-spawned", "",
        "number of tasks created",
        [load](stats const& s) { return load(s.tasks_created); });

    register_ratio(registry, sched, "/threads/time/average", "ns",
        "average time spent executing one HPX thread (task duration)",
        [load](stats const& s) { return load(s.exec_time_ns); },
        [load](stats const& s) { return load(s.tasks_executed); });

    register_ratio(registry, sched, "/threads/time/average-overhead", "ns",
        "average scheduling cost per executed HPX thread (task overhead)",
        [load](stats const& s) { return load(s.sched_time_ns); },
        [load](stats const& s) { return load(s.tasks_executed); });

    register_delta(registry, sched, "/threads/time/cumulative", "ns",
        "cumulative time spent executing HPX threads (task time)",
        [load](stats const& s) { return load(s.exec_time_ns); });

    register_delta(registry, sched, "/threads/time/cumulative-overhead", "ns",
        "cumulative time spent on scheduling (scheduling overhead)",
        [load](stats const& s) { return load(s.sched_time_ns); });

    register_ratio(registry, sched, "/threads/idle-rate", "0.01%",
        "share of worker time not spent executing tasks",
        [load](stats const& s) {
            return load(s.idle_time_ns) + load(s.sched_time_ns);
        },
        [load](stats const& s) { return load(s.total_time_ns); },
        /*scale=*/10000.0);

    register_delta(registry, sched, "/threads/count/stolen", "",
        "tasks this worker stole from other queues",
        [load](stats const& s) { return load(s.steals); });

    register_delta(registry, sched, "/threads/count/steal-attempts", "",
        "steal attempts (successful or not)",
        [load](stats const& s) { return load(s.steal_attempts); });

    // The locality split of /threads/count/stolen: same- vs cross-domain
    // sums to the total, so the steal mix under the numa victim policy
    // is observable from counters alone (bench/steal_throughput reports
    // it; single-domain machines read zero for cross-domain).
    register_delta(registry, sched, "/threads/steal/same-domain", "",
        "tasks stolen from a victim in the thief's NUMA domain",
        [load](stats const& s) { return load(s.steals_same_domain); });

    register_delta(registry, sched, "/threads/steal/cross-domain", "",
        "tasks stolen from a victim in another NUMA domain",
        [load](stats const& s) { return load(s.steals_cross_domain); });

    register_delta(registry, sched, "/threads/count/suspensions", "",
        "task suspensions (blocking on futures/locks)",
        [load](stats const& s) { return load(s.suspensions); });

    register_delta(registry, sched, "/threads/count/yields", "",
        "cooperative yields",
        [load](stats const& s) { return load(s.yields); });

    // Queue-level counters need the queue, not worker stats.
    {
        counter_registry::type_info t;
        t.type_key = "/threads/count/pending-misses";
        t.kind = counter_kind::monotonically_increasing;
        t.helptext = "pop attempts that found the local queue empty";
        t.instance_count = [&sched] {
            return static_cast<std::uint64_t>(sched.num_workers());
        };
        t.create = [&sched](counter_path const& path) -> counter_ptr {
            value_source source;
            if (path.instance == "worker-thread" && path.instance_index >= 0 &&
                path.instance_index <
                    static_cast<std::int64_t>(sched.num_workers()))
            {
                auto const idx = static_cast<unsigned>(path.instance_index);
                source = [&sched, idx] {
                    return static_cast<double>(
                        sched.get_worker(idx).queue().misses());
                };
            }
            else if (path.instance == "total")
            {
                source = [&sched] {
                    double total = 0;
                    for (unsigned i = 0; i < sched.num_workers(); ++i)
                        total += static_cast<double>(
                            sched.get_worker(i).queue().misses());
                    return total;
                };
            }
            if (!source)
                return nullptr;
            return std::make_shared<delta_counter>(
                make_info(path, counter_kind::monotonically_increasing, "",
                    ""),
                std::move(source));
        };
        registry.register_type(std::move(t));
    }

    // Descriptor objects: per-worker value is that worker's cached
    // (recyclable) descriptors; total is every descriptor the scheduler
    // has created and not yet destroyed, cached or in use.
    {
        counter_registry::type_info t;
        t.type_key = "/threads/count/objects";
        t.kind = counter_kind::raw;
        t.helptext =
            "thread descriptor objects (per-worker: cached for reuse; "
            "total: alive in the scheduler)";
        t.instance_count = [&sched] {
            return static_cast<std::uint64_t>(sched.num_workers());
        };
        t.create = [&sched](counter_path const& path) -> counter_ptr {
            value_source source;
            if (path.instance == "worker-thread" && path.instance_index >= 0 &&
                path.instance_index <
                    static_cast<std::int64_t>(sched.num_workers()))
            {
                auto const idx = static_cast<unsigned>(path.instance_index);
                source = [&sched, idx] {
                    return static_cast<double>(
                        sched.get_worker(idx).cached_descriptors());
                };
            }
            else if (path.instance == "total")
            {
                source = [&sched] {
                    return static_cast<double>(sched.descriptors_alive());
                };
            }
            if (!source)
                return nullptr;
            return std::make_shared<gauge_counter>(
                make_info(path, counter_kind::raw, "", ""),
                std::move(source));
        };
        registry.register_type(std::move(t));
    }

    register_gauge(registry, "/threads/count/instantaneous/pending", "",
        "tasks currently runnable", [&sched] {
            return static_cast<double>(
                sched.instantaneous_count(threads::thread_state::pending));
        });
    register_gauge(registry, "/threads/count/instantaneous/active", "",
        "tasks currently executing", [&sched] {
            return static_cast<double>(
                sched.instantaneous_count(threads::thread_state::active));
        });
    register_gauge(registry, "/threads/count/instantaneous/suspended", "",
        "tasks currently suspended", [&sched] {
            return static_cast<double>(
                sched.instantaneous_count(threads::thread_state::suspended));
        });

    register_gauge(registry, "/threads/time/median", "ns",
        "approximate median task duration (log2 histogram)", [&sched] {
            return static_cast<double>(
                sched.duration_histogram().approx_quantile(0.5));
        });

    register_gauge(registry, "/threadqueue/length", "",
        "total length of all pending queues",
        [&sched] {
            double total = 0;
            for (unsigned i = 0; i < sched.num_workers(); ++i)
                total +=
                    static_cast<double>(sched.get_worker(i).queue().length());
            return total;
        },
        [&sched] { return static_cast<std::uint64_t>(sched.num_workers()); });
}

void remove_thread_counters(counter_registry& registry)
{
    for (char const* key : thread_counter_keys)
        registry.unregister_type(key);
}

void register_runtime_counters(counter_registry& registry, runtime& rt)
{
    register_gauge(registry, "/runtime/uptime", "s",
        "seconds since runtime start",
        [&rt] { return rt.uptime_seconds(); });
    register_gauge(registry, "/runtime/memory/resident", "bytes",
        "resident set size", [] { return read_statm_pages(1); });
    register_gauge(registry, "/runtime/memory/virtual", "bytes",
        "virtual memory size", [] { return read_statm_pages(0); });
    register_gauge(registry, "/runtime/count/tasks-alive", "",
        "tasks created and not yet terminated", [&rt] {
            return static_cast<double>(rt.get_scheduler().tasks_alive());
        });

    // Spawn fast-path memory counters. Both are monotonic sums over the
    // process, so they register as delta counters with a single source
    // shared by every instance.
    auto register_runtime_delta = [&registry](std::string key,
                                      std::string help, value_source source) {
        counter_registry::type_info t;
        t.type_key = std::move(key);
        t.kind = counter_kind::monotonically_increasing;
        t.helptext = std::move(help);
        t.create = [source = std::move(source),
                       kind = t.kind](counter_path const& path) -> counter_ptr {
            return std::make_shared<delta_counter>(
                make_info(path, kind, "", ""), source);
        };
        registry.register_type(std::move(t));
    };

    register_runtime_delta("/runtime/memory/frame-recycle-hits",
        "task-frame allocations served from the recycling pool",
        [] {
            return static_cast<double>(detail::frame_pool_totals().cache_hits);
        });
    register_runtime_delta("/runtime/memory/allocations",
        "heap allocations on the spawn path (task frames + descriptors)",
        [&rt] {
            return static_cast<double>(
                detail::frame_pool_totals().allocations +
                rt.get_scheduler().descriptors_created());
        });
}

void remove_runtime_counters(counter_registry& registry)
{
    for (char const* key : runtime_counter_keys)
        registry.unregister_type(key);
}

void register_all_runtime_counters(counter_registry& registry, runtime& rt)
{
    register_thread_counters(registry, rt.get_scheduler());
    register_runtime_counters(registry, rt);
}

}    // namespace minihpx::perf
