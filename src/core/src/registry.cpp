#include <minihpx/perf/registry.hpp>

#include <minihpx/perf/derived_counters.hpp>
#include <minihpx/util/assert.hpp>
#include <minihpx/util/strings.hpp>

#include <charconv>

namespace minihpx::perf {

namespace {

    bool set_error(std::string* error, std::string message)
    {
        if (error)
            *error = std::move(message);
        return false;
    }

}    // namespace

counter_registry::counter_registry()
  : local_locality_(this_locality())
{
    // Derived types are synthesized in create(); registering stub
    // entries here makes them visible to list()/contains().
    for (char const* op :
        {"add", "subtract", "multiply", "divide", "min", "max", "mean"})
    {
        type_info t;
        t.type_key = std::string("/arithmetics/") + op;
        t.kind = counter_kind::aggregating;
        t.helptext = std::string("applies '") + op +
            "' to the comma-separated counters given as @parameters";
        types_.emplace(t.type_key, std::move(t));
    }
    for (char const* stat : {"average", "stddev", "min", "max", "median"})
    {
        type_info t;
        t.type_key = std::string("/statistics/") + stat;
        t.kind = counter_kind::aggregating;
        t.helptext = std::string("rolling-window '") + stat +
            "' of the counter given as @counter[,window]";
        types_.emplace(t.type_key, std::move(t));
    }
}

void counter_registry::register_type(type_info info)
{
    MINIHPX_ASSERT_MSG(info.create != nullptr, "counter type needs a factory");
    std::lock_guard lock(mutex_);
    auto const [it, inserted] = types_.emplace(info.type_key, info);
    (void) it;
    MINIHPX_ASSERT_MSG(inserted, "duplicate counter type registration");
    version_.fetch_add(1, std::memory_order_release);
}

bool counter_registry::unregister_type(std::string const& type_key)
{
    std::lock_guard lock(mutex_);
    bool const erased = types_.erase(type_key) > 0;
    if (erased)
        version_.fetch_add(1, std::memory_order_release);
    return erased;
}

bool counter_registry::contains(std::string const& type_key) const
{
    std::lock_guard lock(mutex_);
    return types_.count(type_key) > 0;
}

counter_ptr counter_registry::create(
    std::string_view name, std::string* error) const
{
    auto path = parse_counter_name(name, error);
    if (!path)
        return nullptr;
    return create(*path, error);
}

counter_handle counter_registry::resolve(
    std::string_view name, std::string* error) const
{
    return counter_handle(create(name, error));
}

counter_handle counter_registry::resolve(
    counter_path const& path, std::string* error) const
{
    return counter_handle(create(path, error));
}

std::vector<counter_handle> counter_registry::resolve_all(
    std::string_view name, std::vector<std::string>* errors) const
{
    std::vector<counter_handle> handles;
    std::string error;
    auto parsed = parse_counter_name(name, &error);
    if (!parsed)
    {
        if (errors)
            errors->push_back(std::string(name) + ": " + error);
        return handles;
    }
    for (auto const& concrete : expand(*parsed))
    {
        if (counter_handle h = resolve(concrete, &error))
            handles.push_back(std::move(h));
        else if (errors)
            errors->push_back(concrete.full_name() + ": " + error);
    }
    return handles;
}

counter_ptr counter_registry::create(
    counter_path const& path, std::string* error) const
{
    if (path.instance_wildcard || path.parent_wildcard)
    {
        set_error(error, "wildcard instance; expand() the name first");
        return nullptr;
    }
    // Derived counters are location-transparent: the combinator itself
    // is synthesized locally and each @parameter routes on its own
    // locality id (so add@/threads{locality#*/...} aggregates across
    // the network once the wildcard is expanded below).
    if (path.object == "arithmetics")
        return create_arithmetic(path, error);
    if (path.object == "statistics")
        return create_statistics(path, error);

    // Counters homed on another locality are served by its registry,
    // through the federation proxy.
    if (path.parent_instance == "locality" &&
        path.parent_index !=
            static_cast<std::int64_t>(local_locality()))
    {
        if (locality_provider* provider = get_locality_provider())
            return provider->create_remote(path, error);
        set_error(error,
            "counter is homed on " +
                locality_prefix(
                    static_cast<std::uint32_t>(path.parent_index)) +
                " but this process is " +
                locality_prefix(local_locality()) +
                " and no counter federation is active");
        return nullptr;
    }

    type_info entry;
    {
        std::lock_guard lock(mutex_);
        auto const it = types_.find(path.type_key());
        if (it == types_.end())
        {
            set_error(error, "unknown counter type: " + path.type_key());
            return nullptr;
        }
        entry = it->second;
    }
    if (!entry.create)
    {
        set_error(error, "counter type not instantiable: " + path.type_key());
        return nullptr;
    }
    counter_ptr result = entry.create(path);
    if (!result)
        set_error(error, "cannot instantiate counter: " + path.full_name());
    return result;
}

counter_ptr counter_registry::create_arithmetic(
    counter_path const& path, std::string* error) const
{
    auto const op = parse_arithmetic_op(path.counter);
    if (!op)
    {
        set_error(error, "unknown arithmetic op: " + path.counter);
        return nullptr;
    }
    if (path.parameters.empty())
    {
        set_error(error, "arithmetic counter requires @counter,... params");
        return nullptr;
    }
    std::vector<counter_ptr> inputs;
    for (auto part : util::split(path.parameters, ','))
    {
        // Each parameter may itself be a wildcard (worker-thread#*,
        // locality#*): expand it so one aggregate spans every matching
        // instance — across localities under a federation.
        auto parsed = parse_counter_name(util::trim(part), error);
        if (!parsed)
            return nullptr;
        auto const concrete = expand(*parsed);
        if (concrete.empty())
        {
            set_error(error,
                "wildcard parameter matches no instances: " +
                    parsed->full_name());
            return nullptr;
        }
        for (auto const& sub : concrete)
        {
            counter_ptr input = create(sub, error);
            if (!input)
                return nullptr;
            inputs.push_back(std::move(input));
        }
    }
    counter_info info;
    info.full_name = path.full_name();
    info.kind = counter_kind::aggregating;
    info.unit_of_measure = inputs.front()->info().unit_of_measure;
    info.helptext = "arithmetic combination of " +
        std::to_string(inputs.size()) + " counters";
    return std::make_shared<arithmetic_counter>(
        std::move(info), *op, std::move(inputs));
}

counter_ptr counter_registry::create_statistics(
    counter_path const& path, std::string* error) const
{
    auto const stat = parse_statistic(path.counter);
    if (!stat)
    {
        set_error(error, "unknown statistic: " + path.counter);
        return nullptr;
    }
    if (path.parameters.empty())
    {
        set_error(error, "statistics counter requires @counter[,window]");
        return nullptr;
    }
    // The window, if present, is the trailing ,N with N all digits.
    std::string_view params = path.parameters;
    std::size_t window = 64;
    if (auto const comma = params.rfind(','); comma != std::string_view::npos)
    {
        std::string_view const tail = params.substr(comma + 1);
        std::size_t parsed = 0;
        auto const [ptr, ec] =
            std::from_chars(tail.data(), tail.data() + tail.size(), parsed);
        if (ec == std::errc() && ptr == tail.data() + tail.size())
        {
            window = parsed;
            params = params.substr(0, comma);
        }
    }
    counter_ptr underlying = create(util::trim(params), error);
    if (!underlying)
        return nullptr;
    counter_info info;
    info.full_name = path.full_name();
    info.kind = counter_kind::aggregating;
    info.unit_of_measure = underlying->info().unit_of_measure;
    info.helptext = "rolling statistic over " + std::to_string(window) +
        " samples of " + underlying->info().full_name;
    return std::make_shared<statistics_counter>(
        std::move(info), *stat, std::move(underlying), window);
}

std::vector<counter_path> counter_registry::expand(
    counter_path const& path) const
{
    // locality#* fans out first: one concrete-locality path per known
    // locality, each then expanded for its instance wildcard (locally
    // or by the peer's own registry).
    if (path.parent_wildcard)
    {
        std::vector<std::uint32_t> localities;
        if (locality_provider* provider = get_locality_provider())
            localities = provider->known_localities();
        if (localities.empty())
            localities.push_back(local_locality());
        std::vector<counter_path> out;
        for (std::uint32_t loc : localities)
        {
            counter_path sub = path;
            sub.parent_wildcard = false;
            sub.parent_index = static_cast<std::int64_t>(loc);
            auto expanded = expand(sub);
            out.insert(out.end(), std::make_move_iterator(expanded.begin()),
                std::make_move_iterator(expanded.end()));
        }
        return out;
    }

    if (!path.instance_wildcard)
        return {path};

    // Instance wildcards on a remote locality expand against *its*
    // registry — only the peer knows how many workers it runs.
    if (path.parent_instance == "locality" &&
        path.parent_index != static_cast<std::int64_t>(local_locality()))
    {
        if (locality_provider* provider = get_locality_provider())
            return provider->expand_remote(path);
        return {};
    }

    std::uint64_t count = 0;
    {
        std::lock_guard lock(mutex_);
        auto const it = types_.find(path.type_key());
        if (it != types_.end() && it->second.instance_count)
            count = it->second.instance_count();
    }
    std::vector<counter_path> out;
    for (std::uint64_t i = 0; i < count; ++i)
    {
        counter_path concrete = path;
        concrete.instance_wildcard = false;
        concrete.instance_index = static_cast<std::int64_t>(i);
        out.push_back(std::move(concrete));
    }
    return out;
}

void counter_registry::set_locality_provider(locality_provider* provider)
{
    provider_.store(provider, std::memory_order_release);
    // Installed/removed federation changes what wildcards expand to.
    version_.fetch_add(1, std::memory_order_release);
}

locality_provider* counter_registry::get_locality_provider() const
{
    return provider_.load(std::memory_order_acquire);
}

std::vector<counter_registry::type_info> counter_registry::list() const
{
    std::lock_guard lock(mutex_);
    std::vector<type_info> out;
    out.reserve(types_.size());
    for (auto const& [_, entry] : types_)
        out.push_back(entry);
    return out;
}

counter_registry& counter_registry::instance()
{
    static counter_registry registry;
    return registry;
}

}    // namespace minihpx::perf
