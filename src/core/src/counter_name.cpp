#include <minihpx/perf/counter_name.hpp>

#include <atomic>
#include <cctype>
#include <charconv>

namespace minihpx::perf {

namespace {

    std::atomic<std::uint32_t> this_locality_id{0};

}    // namespace

std::uint32_t this_locality() noexcept
{
    return this_locality_id.load(std::memory_order_relaxed);
}

void set_this_locality(std::uint32_t id) noexcept
{
    this_locality_id.store(id, std::memory_order_relaxed);
}

std::string locality_prefix(std::uint32_t id)
{
    return "locality#" + std::to_string(id);
}

std::string locality_instance(std::uint32_t id, std::string_view instance)
{
    return "{" + locality_prefix(id) + "/" + std::string(instance) + "}";
}

namespace {

    bool valid_identifier_char(char c) noexcept
    {
        return std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
            c == '_';
    }

    bool valid_counter_char(char c) noexcept
    {
        // counter names may be hierarchical (time/average) and PAPI
        // events contain ':' (OFFCORE_REQUESTS:ALL_DATA_RD).
        return valid_identifier_char(c) || c == '/' || c == ':';
    }

    bool fail(std::string* error, std::string_view message)
    {
        if (error)
            *error = message;
        return false;
    }

    // identifier [#index|#*]
    bool parse_instance_element(std::string_view text, std::string& name,
        std::int64_t& index, bool* wildcard, std::string* error)
    {
        auto const hash = text.find('#');
        std::string_view const ident =
            hash == std::string_view::npos ? text : text.substr(0, hash);
        if (ident.empty())
            return fail(error, "empty instance name");
        for (char c : ident)
            if (!valid_identifier_char(c))
                return fail(error, "invalid character in instance name");
        name.assign(ident);

        if (hash == std::string_view::npos)
            return true;

        std::string_view const idx = text.substr(hash + 1);
        if (idx == "*")
        {
            if (!wildcard)
                return fail(error, "wildcard not allowed here");
            *wildcard = true;
            index = -1;
            return true;
        }
        if (idx.empty())
            return fail(error, "empty instance index");
        auto const [ptr, ec] =
            std::from_chars(idx.data(), idx.data() + idx.size(), index);
        if (ec != std::errc() || ptr != idx.data() + idx.size() || index < 0)
            return fail(error, "malformed instance index");
        return true;
    }

}    // namespace

std::string counter_path::type_key() const
{
    return "/" + object + "/" + counter;
}

std::string counter_path::full_name() const
{
    std::string parent;
    if (parent_wildcard)
        parent = parent_instance + "#*";
    else if (parent_instance == "locality")
        parent = locality_prefix(static_cast<std::uint32_t>(parent_index));
    else
        parent = parent_instance + "#" + std::to_string(parent_index);
    std::string out = "/" + object + "{" + parent + "/" + instance;
    if (instance_wildcard)
        out += "#*";
    else if (instance_index >= 0)
        out += "#" + std::to_string(instance_index);
    out += "}/" + counter;
    if (!parameters.empty())
        out += "@" + parameters;
    return out;
}

std::optional<counter_path> parse_counter_name(
    std::string_view name, std::string* error)
{
    counter_path path;
    // Names without explicit braces belong to the locality this process
    // runs as (0 until minihpx::net claims an id).
    path.parent_index = static_cast<std::int64_t>(this_locality());

    if (name.empty() || name.front() != '/')
    {
        fail(error, "counter name must start with '/'");
        return std::nullopt;
    }
    name.remove_prefix(1);

    // object: up to '{' or '/'.
    std::size_t pos = 0;
    while (pos < name.size() && name[pos] != '{' && name[pos] != '/')
    {
        if (!valid_identifier_char(name[pos]))
        {
            fail(error, "invalid character in object name");
            return std::nullopt;
        }
        ++pos;
    }
    if (pos == 0)
    {
        fail(error, "empty object name");
        return std::nullopt;
    }
    path.object.assign(name.substr(0, pos));
    name.remove_prefix(pos);

    // optional {instance path}
    if (!name.empty() && name.front() == '{')
    {
        auto const close = name.find('}');
        if (close == std::string_view::npos)
        {
            fail(error, "unterminated '{'");
            return std::nullopt;
        }
        std::string_view inst = name.substr(1, close - 1);
        name.remove_prefix(close + 1);

        auto const slash = inst.find('/');
        std::string_view const parent =
            slash == std::string_view::npos ? inst : inst.substr(0, slash);
        // Explicit braces: the parent element replaces the local-locality
        // default entirely (including an omitted index -> 0).
        path.parent_index = 0;
        if (!parse_instance_element(
                parent, path.parent_instance, path.parent_index,
                &path.parent_wildcard, error))
            return std::nullopt;
        if (slash != std::string_view::npos)
        {
            if (!parse_instance_element(inst.substr(slash + 1),
                    path.instance, path.instance_index,
                    &path.instance_wildcard, error))
                return std::nullopt;
        }
    }

    // '/counter'
    if (name.empty() || name.front() != '/')
    {
        fail(error, "expected '/' before counter name");
        return std::nullopt;
    }
    name.remove_prefix(1);

    auto const at = name.find('@');
    std::string_view const counter_part =
        at == std::string_view::npos ? name : name.substr(0, at);
    if (counter_part.empty())
    {
        fail(error, "empty counter name");
        return std::nullopt;
    }
    for (char c : counter_part)
    {
        if (!valid_counter_char(c))
        {
            fail(error, "invalid character in counter name");
            return std::nullopt;
        }
    }
    path.counter.assign(counter_part);
    if (at != std::string_view::npos)
        path.parameters.assign(name.substr(at + 1));

    return path;
}

}    // namespace minihpx::perf
