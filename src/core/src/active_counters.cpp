#include <minihpx/perf/active_counters.hpp>

#include <minihpx/perf/derived_counters.hpp>
#include <minihpx/runtime/runtime.hpp>
#include <minihpx/util/assert.hpp>

#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>

namespace minihpx::perf {

active_counters::active_counters(
    counter_registry& registry, std::vector<std::string> const& names)
  : names_(names)
  , start_ns_(counter_clock_ns())
{
    resolve_names(registry, names_, /*append_only=*/false);
}

void active_counters::resolve_names(counter_registry& registry,
    std::vector<std::string> const& names, bool append_only)
{
    auto record_error = [&](std::string text) {
        // On refresh the same unresolvable names come around again;
        // report each failure once.
        if (!append_only || seen_errors_.insert(text).second)
            errors_.push_back(std::move(text));
        if (!append_only)
            seen_errors_.insert(errors_.back());
    };

    for (auto const& name : names)
    {
        std::string error;
        auto parsed = parse_counter_name(name, &error);
        if (!parsed)
        {
            record_error(name + ": " + error);
            continue;
        }
        for (auto const& concrete : registry.expand(*parsed))
        {
            std::string full = concrete.full_name();
            if (append_only && resolved_full_names_.count(full))
                continue;
            counter_handle h = registry.resolve(concrete, &error);
            if (h)
            {
                resolved_full_names_.insert(std::move(full));
                counters_.push_back(h.get());
                handles_.push_back(std::move(h));
            }
            else
            {
                record_error(full + ": " + error);
            }
        }
    }
}

std::size_t active_counters::refresh(counter_registry& registry)
{
    std::size_t const before = handles_.size();
    resolve_names(registry, names_, /*append_only=*/true);
    return handles_.size() - before;
}

std::vector<active_counters::evaluation> active_counters::evaluate(bool reset)
{
    sample_statistics();
    std::vector<evaluation> out;
    out.reserve(handles_.size());
    for (auto const& h : handles_)
    {
        out.push_back(evaluation{
            h.info().full_name, h.info().unit_of_measure, h.evaluate(reset)});
    }
    return out;
}

void active_counters::evaluate_into(std::span<counter_value> out, bool reset)
{
    MINIHPX_ASSERT(out.size() >= handles_.size());
    sample_statistics();
    for (std::size_t i = 0; i < handles_.size(); ++i)
        out[i] = handles_[i].evaluate(reset);
}

void active_counters::reset()
{
    for (auto const& h : handles_)
        h.reset();
}

void active_counters::sample_statistics()
{
    // Handles cached the statistics downcast at resolution; this is a
    // plain loop of null checks, no RTTI.
    for (auto const& h : handles_)
        h.sample_statistics();
}

void active_counters::print(
    std::ostream& os, bool csv, bool reset, std::string_view annotation)
{
    auto const evaluations = evaluate(reset);
    double const t =
        static_cast<double>(counter_clock_ns() - start_ns_) * 1e-9;
    if (csv)
    {
        // One row: timestamp, annotation, then values in counter order.
        os << std::fixed << std::setprecision(6) << t << ','
           << annotation;
        os.unsetf(std::ios_base::floatfield);
        for (auto const& e : evaluations)
        {
            os << ',';
            if (e.value.valid())
                os << std::setprecision(12) << e.value.get();
        }
        os << '\n';
    }
    else
    {
        if (!annotation.empty())
            os << "# " << annotation << '\n';
        for (auto const& e : evaluations)
        {
            os << e.name << ",," << e.value.count << ','
               << std::fixed << std::setprecision(6) << t << ",[s],";
            os.unsetf(std::ios_base::floatfield);
            if (e.value.valid())
                os << std::setprecision(12) << e.value.get();
            else
                os << to_string(e.value.status);
            if (!e.unit.empty())
                os << ",[" << e.unit << ']';
            os << '\n';
        }
    }
    os.flush();
}

void active_counters::print_csv_header(std::ostream& os) const
{
    os << "time[s],annotation";
    for (auto const& c : counters_)
        os << ',' << c->info().full_name;
    os << '\n';
}

// ---------------------------------------------------------------- session

namespace {

    std::atomic<counter_session*> global_session{nullptr};

}    // namespace

session_options session_options::from_cli(util::cli_args const& args)
{
    session_options options;
    options.counter_names = args.values("mh:print-counter");
    options.interval_ms = args.double_or("mh:print-counter-interval", 0.0);
    options.destination = args.value_or("mh:print-counter-destination", "");
    options.csv = args.value_or("mh:print-counter-format", "text") == "csv";
    options.list_counters = args.flag("mh:list-counters");
    return options;
}

counter_session::counter_session(
    counter_registry& registry, session_options options)
  : options_(std::move(options))
  , counters_(registry, options_.counter_names)
  , out_(&std::cout)
{
    for (auto const& error : counters_.errors())
        std::cerr << "minihpx: counter error: " << error << '\n';

    if (!options_.destination.empty() && options_.destination != "cout")
    {
        auto file = std::make_unique<std::ofstream>(options_.destination);
        MINIHPX_ASSERT_MSG(file->is_open(), "cannot open counter file");
        owned_stream_ = std::move(file);
        out_ = owned_stream_.get();
    }

    if (options_.csv && !counters_.empty())
    {
        counters_.print_csv_header(*out_);
        header_written_ = true;
    }

    counter_session* expected = nullptr;
    bool const installed =
        global_session.compare_exchange_strong(expected, this);
    MINIHPX_ASSERT_MSG(installed, "a counter_session is already active");

    if (options_.interval_ms > 0.0 && !counters_.empty())
        sampler_ = std::thread([this] { sampler_loop(); });

    // Sessions whose counters read live scheduler state must go quiet
    // before the runtime tears down its workers; otherwise a final
    // background sample can race worker destruction. The runtime runs
    // shutdown hooks first thing in its destructor, newest first.
    if (runtime* rt = runtime::get_ptr())
    {
        hooked_runtime_ = rt;
        shutdown_token_ = rt->at_shutdown([this] { quiesce(); });
    }
}

counter_session::~counter_session()
{
    quiesce();
    if (hooked_runtime_ && runtime::get_ptr() == hooked_runtime_)
        static_cast<runtime*>(hooked_runtime_)
            ->remove_shutdown_hook(shutdown_token_);
    global_session.store(nullptr, std::memory_order_release);
}

void counter_session::quiesce()
{
    if (quiesced_.exchange(true))
        return;
    stop_sampler_thread();
    if (options_.print_at_shutdown && !counters_.empty())
    {
        std::lock_guard lock(print_mutex_);
        counters_.print(*out_, options_.csv, /*reset=*/false, "shutdown");
    }
    out_->flush();
}

void counter_session::stop_sampler_thread()
{
    if (!sampler_.joinable())
        return;
    {
        std::lock_guard lock(sampler_mutex_);
        stop_sampler_ = true;
    }
    sampler_cv_.notify_all();
    sampler_.join();
}

void counter_session::evaluate(std::string_view annotation, bool reset)
{
    if (counters_.empty() || quiesced_.load(std::memory_order_acquire))
        return;
    std::lock_guard lock(print_mutex_);
    counters_.print(*out_, options_.csv, reset, annotation);
}

void counter_session::reset()
{
    counters_.reset();
}

counter_session* counter_session::global() noexcept
{
    return global_session.load(std::memory_order_acquire);
}

void counter_session::list_counter_types(
    counter_registry const& registry, std::ostream& os)
{
    os << "Available performance counter types:\n";
    for (auto const& t : registry.list())
    {
        os << "  " << t.type_key << "  [" << to_string(t.kind) << ']';
        if (!t.unit_of_measure.empty())
            os << " (" << t.unit_of_measure << ')';
        os << "\n      " << t.helptext << '\n';
    }
}

void counter_session::sampler_loop()
{
    auto const interval = std::chrono::duration<double, std::milli>(
        options_.interval_ms);
    std::unique_lock lock(sampler_mutex_);
    while (!stop_sampler_)
    {
        if (sampler_cv_.wait_for(lock,
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    interval),
                [this] { return stop_sampler_; }))
            break;
        lock.unlock();
        evaluate("sample");
        lock.lock();
    }
}

void evaluate_active_counters(bool reset, std::string_view annotation)
{
    if (counter_session* session = counter_session::global())
        session->evaluate(annotation, reset);
}

void reset_active_counters()
{
    if (counter_session* session = counter_session::global())
        session->reset();
}

}    // namespace minihpx::perf
