#include <minihpx/mc/engine.hpp>

#include <minihpx/util/assert.hpp>

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <utility>

namespace minihpx::mc {

namespace {

    engine* g_engine = nullptr;

    // Litmus bodies are shallow; 256 KiB covers gtest/ostream detours.
    constexpr std::size_t fiber_stack_size = 256 * 1024;

    bool order_is_acquire(std::memory_order mo) noexcept
    {
        return mo == std::memory_order_acquire ||
            mo == std::memory_order_consume ||
            mo == std::memory_order_acq_rel ||
            mo == std::memory_order_seq_cst;
    }

    bool order_is_release(std::memory_order mo) noexcept
    {
        return mo == std::memory_order_release ||
            mo == std::memory_order_acq_rel ||
            mo == std::memory_order_seq_cst;
    }

    char const* kind_name(op_kind k) noexcept
    {
        switch (k)
        {
        case op_kind::start:
            return "start";
        case op_kind::atomic_load:
            return "atomic-load";
        case op_kind::atomic_store:
            return "atomic-store";
        case op_kind::atomic_rmw:
            return "atomic-rmw";
        case op_kind::fence:
            return "fence";
        case op_kind::mutex_lock:
            return "mutex-lock";
        case op_kind::mutex_try:
            return "mutex-try-lock";
        case op_kind::mutex_unlock:
            return "mutex-unlock";
        case op_kind::cv_wait:
            return "cv-wait";
        case op_kind::cv_notify:
            return "cv-notify";
        case op_kind::yield:
            return "yield";
        case op_kind::spawn:
            return "spawn";
        case op_kind::join:
            return "join";
        }
        return "?";
    }

}    // namespace

// ---------------------------------------------------------------------
// engine lifecycle
// ---------------------------------------------------------------------
engine* engine::current() noexcept
{
    return g_engine;
}

engine::engine(options opts, std::function<void()> body)
  : opts_(std::move(opts))
  , body_(std::move(body))
{
    MINIHPX_ASSERT_MSG(g_engine == nullptr, "mc::check() does not nest");
    g_engine = this;
}

engine::~engine()
{
    for (void* s : stacks_)
        std::free(s);
    g_engine = nullptr;
}

result check(options const& opts, std::function<void()> body)
{
    engine e(opts, std::move(body));
    return e.explore();
}

result engine::explore()
{
    if (!opts_.replay.empty())
    {
        replay_mode_ = true;
        parse_replay(opts_.replay);
    }
    for (;;)
    {
        run_execution();
        ++res_.executions;
        if (stack_.size() > res_.max_depth)
            res_.max_depth = stack_.size();
        if (truncated_)
        {
            ++res_.truncated;
            res_.complete = false;
        }
        if (failed_)
        {
            res_.ok = false;
            res_.complete = false;
            res_.error = failure_;
            res_.schedule = replay_mode_ ? opts_.replay : encode_stack();
            return res_;
        }
        if (replay_mode_)
            return res_;
        if (opts_.max_executions && res_.executions >= opts_.max_executions)
        {
            res_.complete = false;
            return res_;
        }
        if (!backtrack())
            return res_;
    }
}

void engine::reset_execution()
{
    threads_.clear();
    threads_.reserve(max_threads);    // spawn hands out interior pointers
    cursor_ = 0;
    cur_sleep_ = 0;
    forced_cursor_ = 0;
    cur_ = -1;
    last_ = -1;
    preemptions_ = 0;
    steps_ = 0;
    aborting_ = false;
    failed_ = false;
    pruned_ = false;
    truncated_ = false;
    failure_.clear();
}

void engine::run_execution()
{
    reset_execution();

    // Model thread 0 runs the check() body.
    {
        thread_rec& t = threads_.emplace_back();
        t.tid = 0;
        t.body = body_;
        if (stacks_.empty())
            stacks_.push_back(std::malloc(fiber_stack_size));
        t.ctx.create(stacks_[0], fiber_stack_size, &engine::fiber_entry, &t);
    }

    for (;;)
    {
        int const tid = pick_thread();
        if (tid < 0)
            break;
        thread_rec& t = threads_[static_cast<unsigned>(tid)];
        ++steps_;
        t.hb.tick(tid);
        last_ = tid;
        switch_to_fiber(t);
        if (failed_)
            break;
    }
    unwind_all();
}

// ---------------------------------------------------------------------
// scheduling
// ---------------------------------------------------------------------
bool engine::op_enabled(thread_rec const& t) const
{
    switch (t.announced.kind)
    {
    case op_kind::mutex_lock:
        return !static_cast<mutex_state const*>(t.announced.object)->held();
    case op_kind::join:
        return static_cast<thread_rec const*>(t.announced.object)->status ==
            thread_rec::st::finished;
    default:
        return true;
    }
}

bool engine::dependent(op const& a, op const& b)
{
    auto conservative = [](op_kind k) {
        return k == op_kind::spawn || k == op_kind::join ||
            k == op_kind::start || k == op_kind::fence;
    };
    if (conservative(a.kind) || conservative(b.kind))
        return true;
    if (a.kind == op_kind::yield || b.kind == op_kind::yield)
        return false;
    if (a.object != b.object)
        return false;
    return a.write || b.write;    // two loads of one location commute
}

int engine::pick_thread()
{
    if (steps_ >= opts_.max_steps)
    {
        truncated_ = true;
        return -1;
    }

    bool any_alive = false;
    std::vector<int> enabled;
    for (thread_rec const& t : threads_)
    {
        if (t.status == thread_rec::st::finished)
            continue;
        any_alive = true;
        if (t.status == thread_rec::st::ready && op_enabled(t))
            enabled.push_back(t.tid);
    }
    if (!any_alive)
        return -1;    // execution complete
    if (enabled.empty())
    {
        // Every live thread is blocked: a real deadlock of the modeled
        // protocol (this is how a lost wakeup manifests).
        std::ostringstream os;
        os << "deadlock:";
        for (thread_rec const& t : threads_)
        {
            if (t.status == thread_rec::st::finished)
                continue;
            os << " [t" << t.tid << " "
               << (t.status == thread_rec::st::blocked_cv ?
                          "cv-wait" :
                          kind_name(t.announced.kind))
               << "]";
        }
        failed_ = true;
        failure_ = os.str();
        return -1;
    }

    // Would leaving `last_` cost a preemption? (Blocked or yielded
    // threads hand the core over voluntarily.)
    bool const last_runnable = last_ >= 0 &&
        std::find(enabled.begin(), enabled.end(), last_) != enabled.end();
    bool const switching_costs =
        last_runnable && !threads_[static_cast<unsigned>(last_)].yielded;

    // A yield forces one switch when anyone else can run.
    if (last_runnable && threads_[static_cast<unsigned>(last_)].yielded)
    {
        if (enabled.size() > 1)
            std::erase(enabled, last_);
        threads_[static_cast<unsigned>(last_)].yielded = false;
    }

    if (switching_costs && opts_.preemption_bound != ~0u &&
        preemptions_ >= opts_.preemption_bound)
        enabled.assign(1, last_);

    // Sleep-set filter (skipped in replay mode: a replay follows one
    // recorded path and must not prune it).
    std::vector<int> cands;
    for (int tid : enabled)
        if (replay_mode_ || !(cur_sleep_ >> tid & 1u))
            cands.push_back(tid);
    if (cands.empty())
    {
        // Everything runnable is asleep: this prefix only leads to
        // interleavings already covered — prune.
        pruned_ = true;
        return -1;
    }

    // Deterministic option order: continuing with `last_` first keeps
    // the default path preemption-free.
    std::sort(cands.begin(), cands.end());
    if (auto it = std::find(cands.begin(), cands.end(), last_);
        it != cands.end())
        std::rotate(cands.begin(), it, it + 1);

    int chosen;
    if (cands.size() == 1)
    {
        chosen = cands[0];
    }
    else if (replay_mode_)
    {
        if (forced_cursor_ >= forced_.size() ||
            forced_[forced_cursor_].first != 's')
        {
            failed_ = true;
            failure_ = "replay mismatch: expected a scheduling decision";
            return -1;
        }
        chosen = forced_[forced_cursor_++].second;
        if (std::find(cands.begin(), cands.end(), chosen) == cands.end())
        {
            failed_ = true;
            failure_ = "replay mismatch: thread not schedulable here";
            return -1;
        }
    }
    else if (cursor_ < stack_.size())
    {
        decision& d = stack_[cursor_++];
        MINIHPX_ASSERT(d.sched);
        cur_sleep_ = d.sleep;    // node sleep may have grown since
        chosen = d.opts[d.pos];
    }
    else
    {
        decision d;
        d.sched = true;
        d.opts = cands;
        d.pos = 0;
        d.sleep = cur_sleep_;
        stack_.push_back(std::move(d));
        ++cursor_;
        chosen = cands[0];
    }

    if (switching_costs && chosen != last_)
        ++preemptions_;

    // Propagate the sleep set across the op about to execute: threads
    // stay asleep only while everything executed is independent of
    // their announced op.
    op const& o = threads_[static_cast<unsigned>(chosen)].announced;
    std::uint32_t next_sleep = 0;
    for (int tid = 0; tid < static_cast<int>(threads_.size()); ++tid)
    {
        if (tid == chosen || !(cur_sleep_ >> tid & 1u))
            continue;
        if (!dependent(threads_[static_cast<unsigned>(tid)].announced, o))
            next_sleep |= 1u << tid;
    }
    cur_sleep_ = next_sleep;

    return chosen;
}

// ---------------------------------------------------------------------
// decision stack
// ---------------------------------------------------------------------
int engine::choose(int n)
{
    if (n <= 1 || inert())
        return 0;    // inert: index 0 is the mo-latest candidate
    if (replay_mode_)
    {
        if (forced_cursor_ >= forced_.size() ||
            forced_[forced_cursor_].first != 'v')
            fail_current("replay mismatch: expected a value decision");
        int const v = forced_[forced_cursor_++].second;
        if (v < 0 || v >= n)
            fail_current("replay mismatch: value choice out of range");
        return v;
    }
    if (cursor_ < stack_.size())
    {
        decision& d = stack_[cursor_++];
        MINIHPX_ASSERT(!d.sched);
        return d.opts[d.pos];
    }
    decision d;
    d.sched = false;
    d.opts.resize(static_cast<unsigned>(n));
    for (int i = 0; i < n; ++i)
        d.opts[static_cast<unsigned>(i)] = i;
    d.pos = 0;
    stack_.push_back(std::move(d));
    ++cursor_;
    return 0;
}

bool engine::backtrack()
{
    while (!stack_.empty())
    {
        decision& d = stack_.back();
        if (d.sched)
        {
            d.sleep |= 1u << d.opts[d.pos];
            ++d.pos;
            while (d.pos < d.opts.size() &&
                (d.sleep >> d.opts[d.pos] & 1u))
                ++d.pos;
            if (d.pos < d.opts.size())
                return true;
        }
        else
        {
            ++d.pos;
            if (d.pos < d.opts.size())
                return true;
        }
        stack_.pop_back();
    }
    return false;
}

std::string engine::encode_stack() const
{
    std::ostringstream os;
    bool first = true;
    for (decision const& d : stack_)
    {
        if (!first)
            os << ',';
        first = false;
        os << (d.sched ? 's' : 'v') << d.opts[d.pos];
    }
    return os.str();
}

void engine::parse_replay(std::string const& s)
{
    forced_.clear();
    std::size_t i = 0;
    while (i < s.size())
    {
        char const kind = s[i++];
        int v = 0;
        bool any = false;
        while (i < s.size() && s[i] >= '0' && s[i] <= '9')
        {
            v = v * 10 + (s[i++] - '0');
            any = true;
        }
        if ((kind != 's' && kind != 'v') || !any)
        {
            failed_ = true;
            failure_ = "malformed replay schedule string";
            return;
        }
        forced_.emplace_back(kind, v);
        if (i < s.size() && s[i] == ',')
            ++i;
    }
}

// ---------------------------------------------------------------------
// fibers
// ---------------------------------------------------------------------
void engine::switch_to_fiber(thread_rec& t)
{
    cur_ = t.tid;
    if (!t.started)
        t.started = true;
    threads::execution_context::switch_to(engine_ctx_, t.ctx);
    cur_ = -1;
}

void engine::switch_to_engine()
{
    thread_rec& t = threads_[static_cast<unsigned>(cur_)];
    threads::execution_context::switch_to(t.ctx, engine_ctx_);
}

void engine::fiber_entry(void* arg)
{
    auto* t = static_cast<thread_rec*>(arg);
    engine& e = *g_engine;
    try
    {
        t->body();
    }
    catch (abort_execution const&)
    {
    }
    t->status = thread_rec::st::finished;
    threads::execution_context::switch_final(t->ctx, e.engine_ctx_);
    MINIHPX_ASSERT_MSG(false, "finished model fiber resumed");
}

void engine::unwind_all()
{
    aborting_ = true;
    for (thread_rec& t : threads_)
    {
        if (t.status == thread_rec::st::finished)
            continue;
        if (!t.started)
        {
            t.status = thread_rec::st::finished;
            continue;
        }
        // Resuming in abort mode makes the park point throw
        // abort_execution, unwinding the fiber's stack (destructors
        // run — the harness stays ASan-clean).
        cur_ = t.tid;
        threads::execution_context::switch_to(engine_ctx_, t.ctx);
        cur_ = -1;
        MINIHPX_ASSERT(t.status == thread_rec::st::finished);
    }
    aborting_ = false;
}

// ---------------------------------------------------------------------
// primitive entry points
// ---------------------------------------------------------------------
void engine::announce(op o)
{
    MINIHPX_ASSERT_MSG(cur_ >= 0,
        "mc primitives may only be used inside a check() body");
    if (inert())
        return;    // unwinding/failed: execute the effect silently
    thread_rec& t = threads_[static_cast<unsigned>(cur_)];
    t.announced = o;
    switch_to_engine();
    if (aborting_)
        throw abort_execution{};
}

[[noreturn]] void engine::fail_current(std::string message)
{
    if (!failed_)
    {
        failed_ = true;
        failure_ = std::move(message);
    }
    throw abort_execution{};
}

vclock& engine::hb(int tid) noexcept
{
    return threads_[static_cast<unsigned>(tid)].hb;
}

vclock& engine::fence_rel(int tid) noexcept
{
    return threads_[static_cast<unsigned>(tid)].fence_rel;
}

vclock& engine::acq_pending(int tid) noexcept
{
    return threads_[static_cast<unsigned>(tid)].acq_pending;
}

int engine::spawn_thread(std::function<void()> fn)
{
    announce({op_kind::spawn, nullptr, true});
    int const parent = cur_;
    int const tid = static_cast<int>(threads_.size());
    if (tid >= max_threads)
        fail_current("too many model threads (max 8)");
    thread_rec& t = threads_.emplace_back();
    t.tid = tid;
    t.body = std::move(fn);
    t.hb = threads_[static_cast<unsigned>(parent)].hb;    // spawn edge
    while (stacks_.size() <= static_cast<unsigned>(tid))
        stacks_.push_back(std::malloc(fiber_stack_size));
    t.ctx.create(stacks_[static_cast<unsigned>(tid)], fiber_stack_size,
        &engine::fiber_entry, &t);
    return tid;
}

void engine::join_thread(int tid)
{
    announce(
        {op_kind::join, &threads_[static_cast<unsigned>(tid)], false});
    // Enabled only once the target finished; its final clock is the
    // join edge.
    threads_[static_cast<unsigned>(cur_)].hb.join(
        threads_[static_cast<unsigned>(tid)].hb);
}

void engine::block_on_cv(condvar_state& cv, mutex_state& m)
{
    thread_rec& t = threads_[static_cast<unsigned>(cur_)];
    t.status = thread_rec::st::blocked_cv;
    t.cv_mutex = &m;
    cv.waiters_.push_back(cur_);
    switch_to_engine();
    if (aborting_)
        throw abort_execution{};
    // Resumed: a notify re-announced us as mutex_lock and the scheduler
    // picked us with the mutex free. The caller performs lock_effect.
}

void engine::notify_waiters(condvar_state& cv, bool all)
{
    while (!cv.waiters_.empty())
    {
        int const tid = cv.waiters_.front();
        cv.waiters_.erase(cv.waiters_.begin());
        thread_rec& t = threads_[static_cast<unsigned>(tid)];
        t.status = thread_rec::st::ready;
        // No happens-before from the notify itself (matches C++);
        // ordering flows through the mutex reacquisition.
        t.announced = {op_kind::mutex_lock, t.cv_mutex, true};
        if (!all)
            break;
    }
}

// ---------------------------------------------------------------------
// public helpers
// ---------------------------------------------------------------------
thread::thread(std::function<void()> fn)
{
    tid_ = engine::current()->spawn_thread(std::move(fn));
}

void thread::join()
{
    engine::current()->join_thread(tid_);
    joined_ = true;
}

thread::~thread() = default;    // unjoined threads run to execution end

void yield()
{
    engine& e = *engine::current();
    e.announce({op_kind::yield, nullptr, false});
    e.threads_[static_cast<unsigned>(e.cur_)].yielded = true;
}

void fail(std::string message)
{
    engine::current()->fail_current(std::move(message));
}

// ---------------------------------------------------------------------
// atomic_location
// ---------------------------------------------------------------------
namespace {

    bool store_known(store_record const& s, vclock const& hb) noexcept
    {
        return s.writer < 0 || hb[s.writer] >= s.writer_ts;
    }

}    // namespace

void atomic_location::init(std::uint64_t initial)
{
    init_value_ = initial;
    if (engine* e = engine::current(); e && e->cur_tid() >= 0)
        ensure_init();
}

void atomic_location::ensure_init()
{
    if (initialized_)
        return;
    initialized_ = true;
    store_record rec;
    rec.value = init_value_;
    if (engine* e = engine::current(); e && e->cur_tid() >= 0)
    {
        // Treat initialization as a store by the constructing thread:
        // visible to everyone the object is published to (spawn/join/
        // release edges), racy to read otherwise — same as C++.
        int const tid = e->cur_tid();
        rec.writer = tid;
        rec.writer_ts = e->hb(tid)[tid];
        rec.release = e->hb(tid);
    }
    history_.push_back(std::move(rec));
    last_read_.fill(0);
}

std::uint64_t atomic_location::read_value(std::memory_order mo, bool rmw)
{
    engine& e = *engine::current();
    int const tid = e.cur_tid();
    vclock const& hb = e.hb(tid);
    int const n = static_cast<int>(history_.size());

    int chosen;
    if (rmw || !e.weak_memory())
    {
        // RMWs are atomic: they read the latest store in modification
        // order (and so does everything under weak_memory == false).
        chosen = n - 1;
    }
    else
    {
        // Per-thread coherence floor: never read mo-backwards.
        int floor = last_read_[static_cast<unsigned>(tid)];
        // SC restriction: an SC load reads at or after the last SC
        // store to this location in the execution (= SC) order. No
        // global hb strengthening — that would hide relaxed-mutant
        // bugs behind spurious edges.
        if (mo == std::memory_order_seq_cst && last_sc_ > floor)
            floor = last_sc_;
        // Newest first; stop at the newest store this thread already
        // knows happened-before — anything older is stale for it.
        std::vector<int> cand;
        for (int i = n - 1; i >= floor; --i)
        {
            cand.push_back(i);
            if (store_known(history_[static_cast<unsigned>(i)], hb))
                break;
        }
        if (stale_streak_[static_cast<unsigned>(tid)] >= 2)
            chosen = n - 1;    // bounded staleness: force eventual visibility
        else
            chosen = cand[static_cast<unsigned>(
                e.choose(static_cast<int>(cand.size())))];
    }

    if (chosen == n - 1)
        stale_streak_[static_cast<unsigned>(tid)] = 0;
    else
        ++stale_streak_[static_cast<unsigned>(tid)];

    last_read_[static_cast<unsigned>(tid)] = chosen;
    store_record const& s = history_[static_cast<unsigned>(chosen)];
    if (order_is_acquire(mo))
        e.hb(tid).join(s.release);
    else
        e.acq_pending(tid).join(s.release);    // claimed by acquire fence
    return s.value;
}

void atomic_location::push_store(std::uint64_t v, std::memory_order mo,
    bool rmw, vclock const* rmw_read_release)
{
    engine& e = *engine::current();
    int const tid = e.cur_tid();
    store_record rec;
    rec.value = v;
    rec.writer = tid;
    rec.writer_ts = e.hb(tid)[tid];
    // Release clock: a release store carries the thread's full clock; a
    // relaxed store carries only what the last release *fence*
    // published. An RMW additionally continues the release sequence of
    // the store it read.
    rec.release = order_is_release(mo) ? e.hb(tid) : e.fence_rel(tid);
    if (rmw && rmw_read_release)
        rec.release.join(*rmw_read_release);
    rec.sc = mo == std::memory_order_seq_cst;
    if (rec.sc)
        last_sc_ = static_cast<int>(history_.size());
    history_.push_back(std::move(rec));
    last_read_[static_cast<unsigned>(tid)] =
        static_cast<int>(history_.size()) - 1;
    stale_streak_[static_cast<unsigned>(tid)] = 0;
}

std::uint64_t atomic_location::load(std::memory_order mo)
{
    engine& e = *engine::current();
    e.announce({op_kind::atomic_load, this, false});
    ensure_init();
    return read_value(mo, false);
}

void atomic_location::store(std::uint64_t v, std::memory_order mo)
{
    engine& e = *engine::current();
    e.announce({op_kind::atomic_store, this, true});
    ensure_init();
    push_store(v, mo, false, nullptr);
}

std::uint64_t atomic_location::rmw(
    std::uint64_t (*f)(std::uint64_t, std::uint64_t), std::uint64_t operand,
    std::memory_order mo)
{
    engine& e = *engine::current();
    e.announce({op_kind::atomic_rmw, this, true});
    ensure_init();
    int const tid = e.cur_tid();
    std::uint64_t const old = read_value(mo, true);
    vclock const prev_release = history_.back().release;
    (void) tid;
    push_store(f(old, operand), mo, true, &prev_release);
    return old;
}

bool atomic_location::cas(std::uint64_t& expected, std::uint64_t desired,
    std::memory_order success, std::memory_order failure)
{
    engine& e = *engine::current();
    e.announce({op_kind::atomic_rmw, this, true});
    ensure_init();
    std::uint64_t const latest = history_.back().value;
    if (latest == expected)
    {
        std::uint64_t const old = read_value(success, true);
        MINIHPX_ASSERT(old == expected);
        vclock const prev_release = history_.back().release;
        push_store(desired, success, true, &prev_release);
        return true;
    }
    // Failed CAS: modeled as a load of the mo-latest store with the
    // failure ordering (slightly stronger than C++, which lets a failed
    // CAS read older values; none of the checked protocols depend on
    // failed-CAS staleness).
    expected = read_value(failure, true);
    return false;
}

// ---------------------------------------------------------------------
// nonatomic_location (precise happens-before race detection)
// ---------------------------------------------------------------------
void nonatomic_location::on_read()
{
    engine* e = engine::current();
    if (!e || e->cur_tid() < 0 || e->inert())
        return;
    int const tid = e->cur_tid();
    vclock& hb = e->hb(tid);
    hb.tick(tid);    // give this access its own epoch
    if (writer_ >= 0 && hb[writer_] < writer_ts_)
        e->fail_current("data race: non-atomic read is concurrent with a "
                        "non-atomic write (no happens-before edge)");
    reads_.set(tid, hb[tid]);
}

void nonatomic_location::on_write()
{
    engine* e = engine::current();
    if (!e || e->cur_tid() < 0 || e->inert())
        return;
    int const tid = e->cur_tid();
    vclock& hb = e->hb(tid);
    hb.tick(tid);
    if (writer_ >= 0 && hb[writer_] < writer_ts_)
        e->fail_current("data race: non-atomic write is concurrent with a "
                        "previous non-atomic write");
    if (!reads_.leq(hb))
        e->fail_current("data race: non-atomic write is concurrent with a "
                        "previous non-atomic read");
    writer_ = tid;
    writer_ts_ = hb[tid];
}

// ---------------------------------------------------------------------
// mutex_state / condvar_state
// ---------------------------------------------------------------------
void mutex_state::lock()
{
    engine& e = *engine::current();
    e.announce({op_kind::mutex_lock, this, true});
    if (e.inert())
        return;    // unwind: acquisition is a no-op (unlock matches)
    lock_effect(e.cur_tid());    // scheduler guarantees !held_
}

bool mutex_state::try_lock()
{
    engine& e = *engine::current();
    e.announce({op_kind::mutex_try, this, true});
    if (e.inert() || held_)
        return false;
    lock_effect(e.cur_tid());
    return true;
}

void mutex_state::unlock()
{
    engine& e = *engine::current();
    if (e.inert())
    {
        // Guard destructors during unwind: release only if this fiber
        // actually completed the acquisition.
        if (held_ && owner_ == e.cur_tid())
            unlock_effect();
        return;
    }
    MINIHPX_ASSERT_MSG(held_ && owner_ == e.cur_tid(),
        "model mutex unlocked by non-owner");
    e.announce({op_kind::mutex_unlock, this, true});
    unlock_effect();
}

void mutex_state::lock_effect(int tid)
{
    MINIHPX_ASSERT(!held_);
    held_ = true;
    owner_ = tid;
    engine::current()->hb(tid).join(release_);
}

void mutex_state::unlock_effect()
{
    engine& e = *engine::current();
    release_.join(e.hb(e.cur_tid()));
    held_ = false;
    owner_ = -1;
}

void condvar_state::wait(mutex_state& m)
{
    engine& e = *engine::current();
    e.announce({op_kind::cv_wait, this, true});
    if (e.inert())
        return;
    // Atomically (no other thread runs mid-op): release the mutex and
    // park. No spurious wakeups — see the class comment.
    m.unlock_effect();
    e.block_on_cv(*this, m);
    // Resumed holding the scheduling slot for the reacquisition op.
    m.lock_effect(e.cur_tid());
}

void condvar_state::notify_one()
{
    engine& e = *engine::current();
    e.announce({op_kind::cv_notify, this, true});
    if (!e.inert())
        e.notify_waiters(*this, false);
}

void condvar_state::notify_all()
{
    engine& e = *engine::current();
    e.announce({op_kind::cv_notify, this, true});
    if (!e.inert())
        e.notify_waiters(*this, true);
}

}    // namespace minihpx::mc
