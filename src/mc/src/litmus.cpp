#include <minihpx/mc/atomic.hpp>
#include <minihpx/mc/litmus.hpp>

#include <minihpx/threads/chase_lev_deque.hpp>
#include <minihpx/util/eventcount.hpp>
#include <minihpx/util/refcount.hpp>
#include <minihpx/util/spinlock.hpp>
#include <minihpx/util/spsc_ring.hpp>

#include <cstdint>
#include <optional>

namespace minihpx::mc {

namespace {

    // -----------------------------------------------------------------
    // spinlock: mutual exclusion + release->acquire publication
    // -----------------------------------------------------------------
    template <unsigned Mutant>
    void spinlock_body()
    {
        util::basic_spinlock<model_atomics_policy, Mutant> lock;
        nonatomic<int> counter;
        counter.store(0);
        auto work = [&] {
            lock.lock();
            counter.store(counter.load() + 1);
            lock.unlock();
        };
        thread t1(work);
        thread t2(work);
        t1.join();
        t2.join();
        MC_CHECK(counter.load() == 2);
    }

    // -----------------------------------------------------------------
    // SPSC ring: FIFO order, drop accounting, wraparound at capacity
    // (capacity 2, four pushes => every slot is reused)
    // -----------------------------------------------------------------
    template <unsigned Mutant>
    void spsc_body()
    {
        util::spsc_ring<int, model_atomics_policy, Mutant> ring(2);
        unsigned pushed_ok = 0;
        int popped[8];
        int npop = 0;
        thread producer([&] {
            for (int v = 1; v <= 4; ++v)
                if (ring.push(v))
                    ++pushed_ok;
        });
        thread consumer([&] {
            for (int i = 0; i < 6; ++i)
            {
                int v;
                if (ring.pop(v))
                    popped[npop++] = v;
                else
                    yield();
            }
        });
        producer.join();
        consumer.join();
        // Drain what the consumer's bounded attempts left behind (the
        // consumer thread has joined; main is the sole consumer now).
        int v;
        while (ring.pop(v))
            popped[npop++] = v;

        // Every successful push is eventually popped, drops are
        // counted, and values come out strictly in push order.
        MC_CHECK(pushed_ok + ring.dropped() == 4);
        MC_CHECK(static_cast<unsigned>(npop) == pushed_ok);
        for (int i = 1; i < npop; ++i)
            MC_CHECK(popped[i - 1] < popped[i]);
    }

    // -----------------------------------------------------------------
    // Chase-Lev: every pushed element claimed exactly once between the
    // owner's pops and the thieves' steals
    // -----------------------------------------------------------------
    template <unsigned Mutant>
    void chase_lev_run(
        std::size_t capacity, int items, int thieves, int attempts)
    {
        threads::basic_chase_lev_deque<int, model_atomics_policy, Mutant>
            dq(capacity);
        bool claimed[8] = {};
        auto claim = [&](int v) {
            MC_CHECK(v >= 1 && v <= items);
            MC_CHECK(!claimed[v]);    // duplicate pop/steal
            claimed[v] = true;
        };

        int stolen[2][4];
        int nsteal[2] = {};
        std::optional<thread> th[2];
        for (int t = 0; t < thieves; ++t)
            th[t].emplace([&, t] {
                for (int i = 0; i < attempts; ++i)
                {
                    int v = dq.steal();
                    if (v != 0)
                        stolen[t][nsteal[t]++] = v;
                }
            });

        for (int v = 1; v <= items; ++v)
            dq.push(v);
        while (int v = dq.pop())
            claim(v);

        for (int t = 0; t < thieves; ++t)
            th[t]->join();
        for (int t = 0; t < thieves; ++t)
            for (int i = 0; i < nsteal[t]; ++i)
                claim(stolen[t][i]);
        // Anything not claimed yet must still be in the deque (a thief
        // lost its CAS and left the element) — nothing may be lost.
        while (int v = dq.pop())
            claim(v);
        for (int v = 1; v <= items; ++v)
            MC_CHECK(claimed[v]);
    }

    template <unsigned Mutant>
    void chase_lev_2t_body()
    {
        chase_lev_run<Mutant>(4, 3, 1, 2);
    }

    void chase_lev_3t_body()
    {
        chase_lev_run<threads::chase_lev_mutation::none>(4, 3, 2, 1);
    }

    void chase_lev_grow_body()
    {
        // Capacity 2, four pushes: the ring grows mid-protocol while a
        // thief races the owner — no element may be lost across the
        // array swap.
        chase_lev_run<threads::chase_lev_mutation::none>(2, 4, 1, 2);
    }

    // -----------------------------------------------------------------
    // eventcount: no lost wakeups (a lost wakeup deadlocks the model —
    // the condvar has no spurious wakeups) and the bump publishes the
    // work written before it
    // -----------------------------------------------------------------
    template <unsigned Mutant>
    void eventcount_body()
    {
        util::basic_eventcount<model_atomics_policy, Mutant> ec;
        atomic<int> flag{0};
        thread waiter([&] {
            std::uint64_t const epoch0 = ec.prepare();
            if (flag.load(std::memory_order_relaxed) != 0)
                return;    // scan saw the work
            ec.park(epoch0, [] { return false; });
            // prepare()/park() must guarantee the flag store is visible
            // once we are through — even though this load is relaxed.
            MC_CHECK(flag.load(std::memory_order_relaxed) == 1);
        });
        flag.store(1, std::memory_order_relaxed);
        ec.notify_one();
        waiter.join();
    }

    // -----------------------------------------------------------------
    // refcount: dispose runs exactly once, strictly after every other
    // releaser's payload access (no use-after-free)
    // -----------------------------------------------------------------
    template <unsigned Mutant>
    void refcount_body()
    {
        util::basic_refcount<model_atomics_policy, Mutant> refs;
        nonatomic<int> payload;
        payload.store(7);
        int disposed = 0;
        auto dispose = [&] {
            // The "free": unordered with another releaser's read this
            // write is a use-after-free, reported as a data race.
            payload.store(-1);
            ++disposed;
        };
        refs.add_ref();
        refs.add_ref();
        auto user = [&] {
            MC_CHECK(payload.load() == 7);
            refs.release(dispose);
        };
        thread t1(user);
        thread t2(user);
        refs.release(dispose);    // drop the creator's reference
        t1.join();
        t2.join();
        MC_CHECK(disposed == 1);
        MC_CHECK(payload.load() == -1);
    }

    options default_opts()
    {
        options o;
        o.preemption_bound = 2;
        return o;
    }

    std::vector<litmus_case> build_suite()
    {
        namespace clm = threads::chase_lev_mutation;
        options const o = default_opts();
        std::vector<litmus_case> s;

        s.push_back({"spinlock_mutex",
            "TATAS spinlock: mutual exclusion and critical-section "
            "publication",
            o, false, &spinlock_body<util::spinlock_mutation::none>});
        s.push_back({"spinlock_mutex.unlock_relaxed",
            "mutant: unlock store relaxed — guarded data race", o, true,
            &spinlock_body<util::spinlock_mutation::unlock_relaxed>});

        s.push_back({"spsc_fifo",
            "SPSC ring at capacity 2: FIFO, drop accounting, wraparound",
            o, false, &spsc_body<util::spsc_mutation::none>});
        s.push_back({"spsc_fifo.push_publish_relaxed",
            "mutant: head publication relaxed — slot read race", o, true,
            &spsc_body<util::spsc_mutation::push_publish_relaxed>});
        s.push_back({"spsc_fifo.pop_release_relaxed",
            "mutant: tail release relaxed — slot reuse race", o, true,
            &spsc_body<util::spsc_mutation::pop_release_relaxed>});

        s.push_back({"chase_lev_2t",
            "Chase-Lev owner + 1 thief: exactly-once pop/steal", o, false,
            &chase_lev_2t_body<clm::none>});
        s.push_back({"chase_lev_2t.pop_bottom_relaxed",
            "mutant: pop bottom store relaxed — duplicate claim", o, true,
            &chase_lev_2t_body<clm::pop_bottom_relaxed>});
        s.push_back({"chase_lev_2t.pop_top_relaxed",
            "mutant: pop top load relaxed — duplicate claim", o, true,
            &chase_lev_2t_body<clm::pop_top_relaxed>});
        s.push_back({"chase_lev_2t.steal_bottom_relaxed",
            "mutant: steal bottom load relaxed — stale slot", o, true,
            &chase_lev_2t_body<clm::steal_bottom_relaxed>});

        s.push_back({"chase_lev_3t",
            "Chase-Lev owner + 2 thieves: exactly-once across 3 threads",
            o, false, &chase_lev_3t_body});
        s.push_back({"chase_lev_grow",
            "Chase-Lev growth: no element lost across the array swap", o,
            false, &chase_lev_grow_body});

        s.push_back({"eventcount_wakeup",
            "spin-then-park eventcount: no lost wakeup (Dekker pair)", o,
            false, &eventcount_body<util::eventcount_mutation::none>});
        s.push_back({"eventcount_wakeup.notify_bump_relaxed",
            "mutant: epoch bump relaxed — lost wakeup deadlock", o, true,
            &eventcount_body<
                util::eventcount_mutation::notify_bump_relaxed>});

        s.push_back({"refcount_dispose",
            "intrusive refcount: dispose exactly once, after all reads",
            o, false, &refcount_body<util::refcount_mutation::none>});
        s.push_back({"refcount_dispose.release_relaxed",
            "mutant: release decrement relaxed — use-after-free race", o,
            true,
            &refcount_body<util::refcount_mutation::release_relaxed>});

        return s;
    }

}    // namespace

std::vector<litmus_case> const& litmus_suite()
{
    static std::vector<litmus_case> const suite = build_suite();
    return suite;
}

litmus_case const* find_litmus(std::string const& name)
{
    for (litmus_case const& c : litmus_suite())
        if (c.name == name)
            return &c;
    return nullptr;
}

bool run_litmus(litmus_case const& c, result& out)
{
    out = check(c.opts, c.body);
    return c.expect_fail ? !out.ok : out.ok;
}

}    // namespace minihpx::mc
