// minihpx::mc — deterministic stateless model checker for the
// lock-free core.
//
// A Relacy/CDSChecker-style harness, dependency-free and built on the
// runtime's own fibers (threads/context.hpp): model "threads" are
// cooperative fibers multiplexed on ONE OS thread, every visible
// operation (atomic access, fence, mutex/condvar op, yield) is a
// scheduling point, and the engine owns the scheduler — so it can
// enumerate interleavings exhaustively and replay any of them
// byte-for-byte from a recorded decision string.
//
// Exploration is depth-first over a decision stack. Two decision kinds
// interleave on the stack:
//
//   sched  which runnable thread performs its announced next operation
//          (CHESS-style preemption bounding: switching away from a
//          runnable thread costs one unit of the configurable budget;
//          resuming after a block or a voluntary yield is free)
//   value  which store a (non-RMW) atomic load observes, under the
//          operational weak-memory model below
//
// Pruning: sleep sets (Godefroid's DPOR-lite). After a choice `t` at a
// scheduling node is fully explored, t is put to sleep at that node;
// sleeping threads are skipped until an operation *dependent* with
// their announced one executes (same location with a write involved,
// same mutex/condvar, or a conservative always-dependent class). If
// every candidate at a node is asleep, the execution prefix is
// provably redundant and is pruned.
//
// Weak memory: each atomic location keeps its full modification order
// (append order = interleaving order, a legal MO since operations
// execute atomically at scheduling points) as a store history with
// vector clocks. A load may read any store that is not already
// happens-before-superseded for the loading thread, subject to:
//   - per-thread read coherence (never read mo-backwards),
//   - RMW atomicity (RMWs read the mo-latest store),
//   - release/acquire clock transfer, with release-fence upgrading of
//     relaxed stores and RMW release-sequence continuation,
//   - SC restriction: a seq_cst load reads at or after the mo-position
//     of the last seq_cst store to that location in execution order —
//     deliberately with NO global hb-join from the SC order, so weak
//     mutants remain observable (the execution order itself is the SC
//     total order S).
// Deliberate simplifications, documented here and in
// docs/MODEL_CHECKING.md: standalone seq_cst fences are modeled as
// acq_rel only (none of the checked code uses them — the Chase-Lev
// port folds fences into operations precisely for TSan), a failed CAS
// reads the mo-latest store, and condition variables have no spurious
// wakeups (so a lost wakeup reliably surfaces as a deadlock).
//
// Failure modes detected: MC_CHECK violations, data races on
// mc::nonatomic cells (precise vector-clock happens-before), deadlock
// (every live thread blocked — the lost-wakeup detector), and
// step-bound livelock truncation (reported, never silently dropped).
#pragma once

#include <minihpx/threads/context.hpp>

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

namespace minihpx::mc {

// Fibers are cheap but vector clocks are O(max_threads) on every op;
// litmus tests use 2-4 threads.
inline constexpr int max_threads = 8;

// ---------------------------------------------------------------------
// Vector clocks
// ---------------------------------------------------------------------
class vclock
{
public:
    std::uint32_t operator[](int tid) const noexcept
    {
        return c_[static_cast<unsigned>(tid)];
    }

    void tick(int tid) noexcept { ++c_[static_cast<unsigned>(tid)]; }

    void set(int tid, std::uint32_t v) noexcept
    {
        c_[static_cast<unsigned>(tid)] = v;
    }

    void join(vclock const& other) noexcept
    {
        for (int i = 0; i < max_threads; ++i)
            if (other.c_[i] > c_[i])
                c_[i] = other.c_[i];
    }

    // this ⊑ other (every component covered)?
    bool leq(vclock const& other) const noexcept
    {
        for (int i = 0; i < max_threads; ++i)
            if (c_[i] > other.c_[i])
                return false;
        return true;
    }

    void clear() noexcept { c_.fill(0); }

private:
    std::array<std::uint32_t, max_threads> c_{};
};

// ---------------------------------------------------------------------
// Visible operations
// ---------------------------------------------------------------------
enum class op_kind : std::uint8_t
{
    start,         // thread's first scheduling (enter the fiber)
    atomic_load,
    atomic_store,
    atomic_rmw,
    fence,
    mutex_lock,    // enabled only while the mutex is free
    mutex_try,
    mutex_unlock,
    cv_wait,
    cv_notify,
    yield,         // voluntary; forces a switch when others can run
    spawn,
    join,          // enabled only once the target finished
};

struct op
{
    op_kind kind = op_kind::start;
    void const* object = nullptr;
    bool write = false;
};

// Thrown to unwind a fiber's stack when an execution ends early
// (failure, prune, truncation); caught by the fiber entry wrapper.
struct abort_execution
{
};

// ---------------------------------------------------------------------
// check() interface
// ---------------------------------------------------------------------
struct options
{
    // CHESS preemption budget. ~0u means unbounded (full DFS).
    unsigned preemption_bound = 2;
    // Stop after this many executions (0 = no cap). When the cap is
    // hit, result.complete is false.
    std::uint64_t max_executions = 0;
    // Per-execution visible-op bound; spin livelocks truncate here.
    std::uint64_t max_steps = 20000;
    // false restricts every load to the mo-latest store (SC memory) —
    // useful to separate ordering bugs from interleaving bugs.
    bool weak_memory = true;
    // Non-empty: replay exactly this decision string (as recorded in
    // result::schedule) instead of exploring.
    std::string replay;
};

struct result
{
    bool ok = true;
    // True when the bounded space was fully enumerated (no execution
    // or step cap hit). A failing run reports complete = false.
    bool complete = true;
    std::uint64_t executions = 0;
    std::uint64_t truncated = 0;    // executions cut by max_steps
    std::size_t max_depth = 0;      // deepest decision stack
    std::string error;              // empty when ok
    std::string schedule;           // failing decision string (replayable)
};

// Run `body` under the model scheduler and explore. `body` executes on
// model thread 0; it may spawn mc::thread instances and must join them.
result check(options const& opts, std::function<void()> body);

// ---------------------------------------------------------------------
// Model-side primitives (used inside check() bodies)
// ---------------------------------------------------------------------
class engine;

class thread
{
public:
    explicit thread(std::function<void()> fn);
    thread(thread const&) = delete;
    thread& operator=(thread const&) = delete;
    ~thread();

    void join();

private:
    int tid_ = -1;
    bool joined_ = false;
};

// Voluntary reschedule point (Policy::pause/yield in spin loops).
void yield();

// Report a litmus invariant violation; unwinds the current execution.
[[noreturn]] void fail(std::string message);

#define MC_CHECK(expr)                                                         \
    do                                                                         \
    {                                                                          \
        if (!(expr))                                                           \
            ::minihpx::mc::fail("MC_CHECK failed: " #expr " (" __FILE__ ")");  \
    } while (false)

// ---------------------------------------------------------------------
// Modelled memory locations (value-type-erased to 64 bits; the typed
// wrappers in atomic.hpp do the bit conversion)
// ---------------------------------------------------------------------
struct store_record
{
    std::uint64_t value = 0;
    int writer = -1;                // -1: initialization store
    std::uint32_t writer_ts = 0;    // writer clock component at store
    vclock release;                 // transferred to acquiring readers
    bool sc = false;
};

class atomic_location
{
public:
    atomic_location() = default;
    explicit atomic_location(std::uint64_t initial) { init(initial); }

    atomic_location(atomic_location const&) = delete;
    atomic_location& operator=(atomic_location const&) = delete;

    void init(std::uint64_t initial);

    std::uint64_t load(std::memory_order mo);
    void store(std::uint64_t v, std::memory_order mo);
    // RMW: new = f(old, operand); returns old. RMWs read the mo-latest
    // store (atomicity) and continue its release sequence.
    std::uint64_t rmw(std::uint64_t (*f)(std::uint64_t, std::uint64_t),
        std::uint64_t operand, std::memory_order mo);
    bool cas(std::uint64_t& expected, std::uint64_t desired,
        std::memory_order success, std::memory_order failure);

private:
    void ensure_init();
    std::uint64_t read_value(std::memory_order mo, bool rmw);
    void push_store(std::uint64_t v, std::memory_order mo, bool rmw,
        vclock const* rmw_read_release);

    std::vector<store_record> history_;
    std::array<int, max_threads> last_read_{};    // per-thread mo floor
    // Bounded staleness (the operational form of C++'s eventual-
    // visibility guarantee): after two consecutive stale choices a
    // thread's next load reads the mo-latest store deterministically.
    // Keeps spin loops from branching exponentially; every checked
    // invariant needs at most one stale observation to break.
    std::array<std::uint8_t, max_threads> stale_streak_{};
    int last_sc_ = -1;                            // mo index of last SC store
    std::uint64_t init_value_ = 0;
    bool initialized_ = false;
};

// Plain (non-atomic) cell with precise happens-before race detection.
class nonatomic_location
{
public:
    void on_read();
    void on_write();

private:
    int writer_ = -1;
    std::uint32_t writer_ts_ = 0;
    vclock reads_;
};

// Mutex modeled at the scheduler level: lock is a visible op enabled
// only while free; unlock/lock transfer happens-before.
class mutex_state
{
public:
    mutex_state() = default;
    mutex_state(mutex_state const&) = delete;
    mutex_state& operator=(mutex_state const&) = delete;

    void lock();
    bool try_lock();
    void unlock();

    bool held() const noexcept { return held_; }

private:
    friend class engine;
    friend class condvar_state;

    // Effects without announcement (cv wait path, engine internals).
    void lock_effect(int tid);
    void unlock_effect();

    bool held_ = false;
    int owner_ = -1;
    vclock release_;
};

// Condition variable with NO spurious wakeups: a waiter sleeps until
// notified, so a protocol that can lose a wakeup deadlocks — which is
// exactly what the lost-wakeup litmus asserts on. notify_one wakes the
// oldest waiter (deterministic FIFO).
class condvar_state
{
public:
    condvar_state() = default;
    condvar_state(condvar_state const&) = delete;
    condvar_state& operator=(condvar_state const&) = delete;

    void wait(mutex_state& m);
    void notify_one();
    void notify_all();

private:
    friend class engine;
    std::vector<int> waiters_;
};

// ---------------------------------------------------------------------
// Engine (one instance per check(); primitives reach it via current())
// ---------------------------------------------------------------------
class engine
{
public:
    static engine* current() noexcept;

    // Announce the next visible op of the calling fiber and park until
    // the scheduler picks this thread to execute it. On resume the
    // caller performs the op's effect atomically (no other thread runs
    // until its next announcement).
    void announce(op o);

    // Value decision (load with several readable stores). Returns the
    // chosen index in [0, n). n == 1 short-circuits without a node.
    int choose(int n);

    [[noreturn]] void fail_current(std::string message);

    // ---- state the modelled locations operate on ----
    int cur_tid() const noexcept { return cur_; }
    // True while fibers unwind at execution end: primitives called
    // from destructors during the unwind degrade to inert effects
    // (no parking, no decisions, no race checks).
    bool aborting() const noexcept { return aborting_; }
    // Inert mode: the execution is over (failure recorded or fibers
    // unwinding) — primitives must not park, branch, or re-fail.
    // Covers destructors running while fail_current()'s exception is
    // still propagating, before the engine regains control.
    bool inert() const noexcept { return aborting_ || failed_; }
    vclock& hb(int tid) noexcept;
    vclock& fence_rel(int tid) noexcept;
    vclock& acq_pending(int tid) noexcept;
    bool weak_memory() const noexcept { return opts_.weak_memory; }

    // cv-wait protocol (called by condvar_state/mutex shims)
    void block_on_cv(condvar_state& cv, mutex_state& m);
    void notify_waiters(condvar_state& cv, bool all);

    int spawn_thread(std::function<void()> fn);
    void join_thread(int tid);

private:
    friend result check(options const&, std::function<void()>);
    friend class thread;
    friend void yield();

    struct thread_rec
    {
        int tid = -1;
        std::function<void()> body;
        threads::execution_context ctx;
        enum class st : std::uint8_t
        {
            ready,         // has an announced (maybe disabled) op
            blocked_cv,    // parked in cv wait, not yet notified
            finished,
        };
        st status = st::ready;
        op announced;
        bool started = false;
        bool yielded = false;    // set by yield; forces a switch once
        vclock hb;
        vclock fence_rel;
        vclock acq_pending;
        mutex_state* cv_mutex = nullptr;    // reacquire target after notify
    };

    struct decision
    {
        bool sched = true;
        std::vector<int> opts;    // sched: tids; value: candidate indices
        std::size_t pos = 0;
        std::uint32_t sleep = 0;    // sched only: explored/skipped tids
    };

    engine(options opts, std::function<void()> body);
    ~engine();

    result explore();
    // One execution following/extending the decision stack. Returns
    // false when the stack is exhausted (exploration done).
    void run_execution();
    bool backtrack();
    void reset_execution();
    void unwind_all();

    int pick_thread();
    bool op_enabled(thread_rec const& t) const;
    static bool dependent(op const& a, op const& b);
    std::string encode_stack() const;
    void parse_replay(std::string const& s);

    void switch_to_fiber(thread_rec& t);
    void switch_to_engine();
    static void fiber_entry(void* arg);

    options opts_;
    std::function<void()> body_;
    result res_;

    std::vector<thread_rec> threads_;
    std::vector<void*> stacks_;
    threads::execution_context engine_ctx_;

    std::vector<decision> stack_;
    std::size_t cursor_ = 0;
    std::uint32_t cur_sleep_ = 0;    // propagated along the execution

    // Replay mode: forced decisions decoded from options::replay.
    std::vector<std::pair<char, int>> forced_;
    std::size_t forced_cursor_ = 0;
    bool replay_mode_ = false;

    int cur_ = -1;          // thread currently executing (or -1: engine)
    int last_ = -1;         // thread that executed the previous op
    unsigned preemptions_ = 0;
    std::uint64_t steps_ = 0;
    bool aborting_ = false;
    bool failed_ = false;
    bool pruned_ = false;
    bool truncated_ = false;
    std::string failure_;
};

}    // namespace minihpx::mc
