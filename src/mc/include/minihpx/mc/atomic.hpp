// Typed model-side atomics: the mc instantiation of the atomics policy
// (util/atomics_policy.hpp). Each wrapper forwards to the type-erased
// 64-bit locations in engine.hpp, so the same primitive templates
// (chase_lev_deque, spsc_ring, eventcount, refcount, spinlock) compile
// unchanged over either policy:
//
//   production:  Policy = util::std_atomics_policy  → std::atomic
//   model:       Policy = mc::model_atomics_policy  → these wrappers
//
// Values are memcpy'd to/from 64 bits (static_assert'd fit), which
// covers every type the checked code stores atomically: integers,
// bools, and pointers.
#pragma once

#include <minihpx/mc/engine.hpp>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace minihpx::mc {

namespace detail {

    inline bool is_acquire(std::memory_order mo) noexcept
    {
        return mo == std::memory_order_acquire ||
            mo == std::memory_order_consume ||
            mo == std::memory_order_acq_rel ||
            mo == std::memory_order_seq_cst;
    }

    inline bool is_release(std::memory_order mo) noexcept
    {
        return mo == std::memory_order_release ||
            mo == std::memory_order_acq_rel ||
            mo == std::memory_order_seq_cst;
    }

    // C++23 semantics: failure order of the one-order CAS overloads.
    inline std::memory_order cas_failure_order(std::memory_order mo) noexcept
    {
        switch (mo)
        {
        case std::memory_order_acq_rel:
            return std::memory_order_acquire;
        case std::memory_order_release:
            return std::memory_order_relaxed;
        default:
            return mo;
        }
    }

}    // namespace detail

// Standalone fence, modeled as at most acq_rel (see the engine header
// comment): an acquire fence claims the release clocks of earlier
// relaxed loads, a release fence lets later relaxed stores publish the
// thread's current clock.
inline void atomic_fence(std::memory_order mo)
{
    engine& e = *engine::current();
    e.announce({op_kind::fence, nullptr, true});
    int const tid = e.cur_tid();
    if (detail::is_acquire(mo))
        e.hb(tid).join(e.acq_pending(tid));
    if (detail::is_release(mo))
        e.fence_rel(tid).join(e.hb(tid));
}

template <typename T>
class atomic
{
    static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8,
        "model atomics erase values to 64 bits");

public:
    atomic() noexcept = default;    // zero-initialized, like the uses here

    atomic(T v) { loc_.init(to_u64(v)); }

    atomic(atomic const&) = delete;
    atomic& operator=(atomic const&) = delete;

    T load(std::memory_order mo = std::memory_order_seq_cst)
    {
        return from_u64(loc_.load(mo));
    }

    // The checked primitives call load() through `const` objects
    // (introspection accessors); the model state mutates anyway.
    T load(std::memory_order mo = std::memory_order_seq_cst) const
    {
        return from_u64(const_cast<atomic_location&>(loc_).load(mo));
    }

    void store(T v, std::memory_order mo = std::memory_order_seq_cst)
    {
        loc_.store(to_u64(v), mo);
    }

    T exchange(T v, std::memory_order mo = std::memory_order_seq_cst)
    {
        return from_u64(loc_.rmw(
            [](std::uint64_t, std::uint64_t nv) { return nv; }, to_u64(v),
            mo));
    }

    T fetch_add(T v, std::memory_order mo = std::memory_order_seq_cst)
    {
        return from_u64(loc_.rmw(
            [](std::uint64_t a, std::uint64_t b) {
                return to_u64(static_cast<T>(from_u64(a) + from_u64(b)));
            },
            to_u64(v), mo));
    }

    T fetch_sub(T v, std::memory_order mo = std::memory_order_seq_cst)
    {
        return from_u64(loc_.rmw(
            [](std::uint64_t a, std::uint64_t b) {
                return to_u64(static_cast<T>(from_u64(a) - from_u64(b)));
            },
            to_u64(v), mo));
    }

    bool compare_exchange_strong(T& expected, T desired,
        std::memory_order success, std::memory_order failure)
    {
        std::uint64_t e = to_u64(expected);
        bool const ok = loc_.cas(e, to_u64(desired), success, failure);
        expected = from_u64(e);
        return ok;
    }

    bool compare_exchange_strong(T& expected, T desired,
        std::memory_order mo = std::memory_order_seq_cst)
    {
        return compare_exchange_strong(
            expected, desired, mo, detail::cas_failure_order(mo));
    }

    // The model never fails spuriously; weak == strong (the checked
    // code always retries in a loop, so this loses no behaviors).
    bool compare_exchange_weak(T& expected, T desired,
        std::memory_order success, std::memory_order failure)
    {
        return compare_exchange_strong(expected, desired, success, failure);
    }

    bool compare_exchange_weak(T& expected, T desired,
        std::memory_order mo = std::memory_order_seq_cst)
    {
        return compare_exchange_strong(expected, desired, mo);
    }

private:
    static std::uint64_t to_u64(T v) noexcept
    {
        std::uint64_t r = 0;
        std::memcpy(&r, &v, sizeof(T));
        return r;
    }

    static T from_u64(std::uint64_t r) noexcept
    {
        T v;
        std::memcpy(&v, &r, sizeof(T));
        return v;
    }

    atomic_location loc_;
};

// Race-checked plain cell: the model counterpart of util::plain_cell.
// Every access is checked against the happens-before clocks; an
// unordered access pair fails the execution with a data-race report.
template <typename T>
class nonatomic
{
public:
    nonatomic() = default;

    void store(T const& v)
    {
        loc_.on_write();
        value_ = v;
    }

    T load() const
    {
        loc_.on_read();
        return value_;
    }

    T& ref()
    {
        loc_.on_read();
        return value_;
    }

    T const& ref() const
    {
        loc_.on_read();
        return value_;
    }

private:
    mutable nonatomic_location loc_;
    T value_{};
};

// BasicLockable + Lockable shim over the engine's mutex model (works
// with std::lock_guard / std::unique_lock).
class mutex_shim
{
public:
    void lock() { state_.lock(); }
    bool try_lock() { return state_.try_lock(); }
    void unlock() { state_.unlock(); }

    mutex_state& state() noexcept { return state_; }

private:
    mutex_state state_;
};

// Condition-variable shim. Predicate waits map to the engine's
// spurious-wakeup-free cv; timed waits are modeled as "the timeout
// fires immediately after one reschedule" — the legal behavior that
// stresses the caller's retry logic hardest.
class condvar_shim
{
public:
    template <typename Lock, typename Pred>
    void wait(Lock& lock, Pred pred)
    {
        while (!pred())
            state_.wait(lock.mutex()->state());
    }

    template <typename Lock, typename Rep, typename Period, typename Pred>
    bool wait_for(
        Lock& lock, std::chrono::duration<Rep, Period> const&, Pred pred)
    {
        if (pred())
            return true;
        mutex_shim* m = lock.mutex();
        m->unlock();
        yield();
        m->lock();
        return pred();
    }

    void notify_one() { state_.notify_one(); }
    void notify_all() { state_.notify_all(); }

private:
    condvar_state state_;
};

// The policy handed to the primitive templates under test.
struct model_atomics_policy
{
    template <typename T>
    using atomic = mc::atomic<T>;
    template <typename T>
    using nonatomic = mc::nonatomic<T>;
    using mutex = mutex_shim;
    using condition_variable = condvar_shim;

    static void thread_fence(std::memory_order mo) { atomic_fence(mo); }

    // Spin-loop relaxation points become voluntary model reschedules,
    // which both bounds spin exploration and models "the other thread
    // eventually runs".
    static void pause() { mc::yield(); }
    static void yield() { mc::yield(); }
};

}    // namespace minihpx::mc
