// The model-checked litmus suite: each case wires one lock-free
// primitive (instantiated over mc::model_atomics_policy) into a small
// concurrent scenario and asserts its contract across EVERY schedule
// and weak-memory behavior the engine enumerates.
//
// Cases come in pairs: the production instantiation (must pass) and
// fence-weakening mutants (compile-time Mutant parameter of the same
// template; the checker MUST report a bug — mutation validation that
// the harness actually has teeth). `expect_fail` distinguishes them;
// the minihpx-mc tool and the ctest registrations assert both
// directions.
#pragma once

#include <minihpx/mc/engine.hpp>

#include <functional>
#include <string>
#include <vector>

namespace minihpx::mc {

struct litmus_case
{
    std::string name;
    std::string description;
    options opts;             // per-case bound/step defaults
    bool expect_fail = false; // mutant: checker must find the bug
    std::function<void()> body;
};

// The registry (stable order; names are unique).
std::vector<litmus_case> const& litmus_suite();

// nullptr when unknown.
litmus_case const* find_litmus(std::string const& name);

// Run one case; returns true when the outcome matches expectation
// (pass for production cases, failure detected for mutants). `out`
// receives the raw engine result.
bool run_litmus(litmus_case const& c, result& out);

}    // namespace minihpx::mc
