#include <minihpx/net/sim_fabric.hpp>

namespace minihpx::net {

struct sim_fabric::port final : transport
{
    port(sim_fabric& fabric, std::uint32_t id) : fabric_(fabric), id_(id) {}

    bool send(message const& m) override
    {
        if (closed_)
            return false;
        return fabric_.post(m);
    }

    void close() override { closed_ = true; }

    sim_fabric& fabric_;
    std::uint32_t id_;
    bool closed_ = false;
};

sim_fabric::sim_fabric(std::uint32_t count, sim::net_model model)
  : model_(model)
  , unplugged_(count, 0)
{
    registries_.reserve(count);
    ports_.reserve(count);
    localities_.reserve(count);

    for (std::uint32_t i = 0; i < count; ++i)
    {
        registries_.push_back(std::make_unique<perf::counter_registry>());

        net_config config;
        config.id = i;
        config.num_localities = count;
        config.heartbeat_interval_ms = 0;    // liveness is explicit here
        config.inline_handlers = true;       // no runtime, one thread
        config.registry = registries_.back().get();
        config.pump = [this] { return step(); };
        localities_.push_back(std::make_unique<locality>(std::move(config)));
    }

    for (std::uint32_t i = 0; i < count; ++i)
    {
        ports_.push_back(std::make_unique<port>(*this, i));
        localities_[i]->attach_transport(ports_.back().get());
    }

    // No handshake on a fabric: the mesh is up by construction.
    for (std::uint32_t i = 0; i < count; ++i)
        for (std::uint32_t j = 0; j < count; ++j)
            if (i != j)
                localities_[i]->peer_up(j);
}

sim_fabric::~sim_fabric()
{
    for (auto& loc : localities_)
        loc->stop();
}

bool sim_fabric::post(message m)
{
    if (m.source >= unplugged_.size() || m.dest >= unplugged_.size())
        return false;
    if (unplugged_[m.source] || unplugged_[m.dest])
        return false;

    event ev;
    ev.time = model_.delivery_ns(now_ns_, m.payload.size());
    ev.seq = seq_++;
    ev.m = std::move(m);
    queue_.push(std::move(ev));
    return true;
}

bool sim_fabric::step()
{
    while (!queue_.empty())
    {
        // priority_queue::top is const; the payload move is safe only
        // because we pop immediately after.
        event ev = std::move(const_cast<event&>(queue_.top()));
        queue_.pop();

        if (unplugged_[ev.m.dest] || unplugged_[ev.m.source])
            continue;    // dropped on the floor, like the real thing

        now_ns_ = ev.time;
        ++delivered_;
        log_ += "t=" + std::to_string(ev.time) +
            " seq=" + std::to_string(ev.seq) + " " +
            std::to_string(ev.m.source) + "->" +
            std::to_string(ev.m.dest) + " " + to_string(ev.m.type) +
            " req=" + std::to_string(ev.m.request_id) +
            " action=" + std::to_string(ev.m.action_id) +
            " bytes=" + std::to_string(ev.m.payload.size()) + "\n";

        localities_[ev.m.dest]->deliver(std::move(ev.m));
        return true;
    }
    return false;
}

std::uint64_t sim_fabric::run()
{
    std::uint64_t n = 0;
    while (step())
        ++n;
    return n;
}

void sim_fabric::partition(std::uint32_t id)
{
    if (id >= unplugged_.size() || unplugged_[id])
        return;
    unplugged_[id] = 1;
    for (std::uint32_t i = 0; i < localities_.size(); ++i)
    {
        if (i == id)
            continue;
        localities_[i]->peer_down(id, "partitioned from the fabric");
        localities_[id]->peer_down(i, "partitioned from the fabric");
    }
}

}    // namespace minihpx::net
