#include <minihpx/net/tcp.hpp>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <string>

namespace minihpx::net {

namespace {

    std::uint64_t steady_ms() noexcept
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
    }

    bool read_full(int fd, void* out, std::size_t size) noexcept
    {
        auto* bytes = static_cast<std::uint8_t*>(out);
        while (size > 0)
        {
            ssize_t const n = ::recv(fd, bytes, size, 0);
            if (n > 0)
            {
                bytes += n;
                size -= static_cast<std::size_t>(n);
                continue;
            }
            if (n < 0 && errno == EINTR)
                continue;
            return false;    // EOF or hard error
        }
        return true;
    }

    bool write_full(int fd, void const* data, std::size_t size) noexcept
    {
        auto const* bytes = static_cast<std::uint8_t const*>(data);
        while (size > 0)
        {
            ssize_t const n = ::send(fd, bytes, size, MSG_NOSIGNAL);
            if (n > 0)
            {
                bytes += n;
                size -= static_cast<std::size_t>(n);
                continue;
            }
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        return true;
    }

    bool write_message(int fd, message const& m) noexcept
    {
        wire_header const header = encode_header(m);
        if (!write_full(fd, header.data(), header.size()))
            return false;
        return m.payload.empty() ||
            write_full(fd, m.payload.data(), m.payload.size());
    }

    // false on EOF/error/malformed frame.
    bool read_message(int fd, message& m) noexcept
    {
        wire_header header;
        if (!read_full(fd, header.data(), header.size()))
            return false;
        std::uint32_t payload_size = 0;
        if (!decode_header(header, m, &payload_size, nullptr))
            return false;
        m.payload.resize(payload_size);
        return payload_size == 0 ||
            read_full(fd, m.payload.data(), payload_size);
    }

    void set_nodelay(int fd) noexcept
    {
        int const one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }

    sockaddr_in loopback(std::uint16_t port) noexcept
    {
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        return addr;
    }

}    // namespace

tcp_mesh::tcp_mesh(locality& owner) : owner_(owner)
{
    owner_.attach_transport(this);
}

tcp_mesh::~tcp_mesh()
{
    close();
}

std::uint16_t tcp_mesh::listen(std::uint16_t port)
{
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0)
        throw std::runtime_error(
            std::string("socket() failed: ") + std::strerror(errno));

    int const one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr = loopback(port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
            sizeof(addr)) != 0)
        throw std::runtime_error("bind(127.0.0.1:" + std::to_string(port) +
            ") failed: " + std::strerror(errno));
    if (::listen(listen_fd_, 16) != 0)
        throw std::runtime_error(
            std::string("listen() failed: ") + std::strerror(errno));

    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    listen_port_ = ntohs(addr.sin_port);

    accept_thread_ = std::thread([this] { accept_loop(); });
    return listen_port_;
}

void tcp_mesh::accept_loop()
{
    for (;;)
    {
        int const fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0)
        {
            if (errno == EINTR)
                continue;
            return;    // listener closed
        }
        if (closing_.load(std::memory_order_acquire))
        {
            ::close(fd);
            return;
        }
        set_nodelay(fd);

        // Handshake: the connector speaks first.
        message hello;
        if (!read_message(fd, hello) ||
            hello.type != message_type::hello ||
            hello.dest != owner_.id())
        {
            ::close(fd);
            continue;
        }

        message ack;
        ack.type = message_type::hello_ack;
        ack.source = owner_.id();
        ack.dest = hello.source;
        if (!write_message(fd, ack))
        {
            ::close(fd);
            continue;
        }

        add_connection(fd, hello.source);
    }
}

void tcp_mesh::connect(std::vector<std::uint16_t> const& ports,
    std::uint64_t timeout_ms)
{
    std::uint64_t const deadline = steady_ms() + timeout_ms;

    // Dial every lower-id peer, retrying while it boots.
    for (std::uint32_t peer = 0; peer < owner_.id(); ++peer)
    {
        if (peer >= ports.size())
            throw std::runtime_error("no port known for locality#" +
                std::to_string(peer));

        int fd = -1;
        for (;;)
        {
            fd = ::socket(AF_INET, SOCK_STREAM, 0);
            if (fd < 0)
                throw std::runtime_error(std::string("socket() failed: ") +
                    std::strerror(errno));
            sockaddr_in addr = loopback(ports[peer]);
            if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                    sizeof(addr)) == 0)
                break;
            ::close(fd);
            fd = -1;
            if (steady_ms() >= deadline)
                throw std::runtime_error("timed out connecting to "
                    "locality#" + std::to_string(peer) + " on port " +
                    std::to_string(ports[peer]));
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
        set_nodelay(fd);

        message hello;
        hello.type = message_type::hello;
        hello.source = owner_.id();
        hello.dest = peer;
        message ack;
        if (!write_message(fd, hello) || !read_message(fd, ack) ||
            ack.type != message_type::hello_ack || ack.source != peer)
        {
            ::close(fd);
            throw std::runtime_error("handshake with locality#" +
                std::to_string(peer) + " failed");
        }

        add_connection(fd, peer);
    }

    // Wait for every higher-id peer to dial us.
    std::size_t const expected = owner_.num_localities() - 1;
    while (connection_count() < expected)
    {
        if (steady_ms() >= deadline)
            throw std::runtime_error("timed out waiting for inbound "
                "connections: have " + std::to_string(connection_count()) +
                " of " + std::to_string(expected));
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
}

void tcp_mesh::add_connection(int fd, std::uint32_t peer)
{
    connection* raw = nullptr;
    {
        std::lock_guard<std::mutex> lock(connections_mutex_);
        auto& slot = connections_[peer];
        if (slot && slot->open.load(std::memory_order_acquire))
        {
            // Duplicate dial (reconnect attempt) — keep the first.
            ::close(fd);
            return;
        }
        if (slot && slot->reader.joinable())
            slot->reader.join();
        slot = std::make_unique<connection>();
        slot->fd = fd;
        slot->peer = peer;
        slot->open.store(true, std::memory_order_release);
        raw = slot.get();
    }
    owner_.peer_up(peer);
    raw->reader = std::thread([this, raw] { reader_loop(raw); });
}

void tcp_mesh::reader_loop(connection* conn)
{
    message m;
    while (read_message(conn->fd, m))
        owner_.deliver(std::move(m));

    bool const was_open = conn->open.exchange(false);
    if (was_open && !closing_.load(std::memory_order_acquire))
        owner_.peer_down(conn->peer, "connection lost");
}

bool tcp_mesh::send(message const& m)
{
    std::lock_guard<std::mutex> lock(connections_mutex_);
    auto const it = connections_.find(m.dest);
    if (it == connections_.end() ||
        !it->second->open.load(std::memory_order_acquire))
        return false;
    std::lock_guard<std::mutex> write_lock(it->second->write_mutex);
    return write_message(it->second->fd, m);
}

void tcp_mesh::close()
{
    if (closed_.exchange(true, std::memory_order_acq_rel))
        return;
    closing_.store(true, std::memory_order_release);

    if (listen_fd_ >= 0)
    {
        ::shutdown(listen_fd_, SHUT_RDWR);
        ::close(listen_fd_);
    }
    if (accept_thread_.joinable())
        accept_thread_.join();
    listen_fd_ = -1;

    std::vector<connection*> conns;
    {
        std::lock_guard<std::mutex> lock(connections_mutex_);
        for (auto& [peer, conn] : connections_)
            conns.push_back(conn.get());
    }
    for (connection* conn : conns)
    {
        conn->open.store(false, std::memory_order_release);
        ::shutdown(conn->fd, SHUT_RDWR);
    }
    for (connection* conn : conns)
    {
        if (conn->reader.joinable())
            conn->reader.join();
        ::close(conn->fd);
        conn->fd = -1;
    }
}

std::size_t tcp_mesh::connection_count() const
{
    std::lock_guard<std::mutex> lock(connections_mutex_);
    std::size_t n = 0;
    for (auto const& [peer, conn] : connections_)
        if (conn->open.load(std::memory_order_acquire))
            ++n;
    return n;
}

}    // namespace minihpx::net
