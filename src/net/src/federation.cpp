#include <minihpx/net/federation.hpp>

#include <minihpx/perf/basic_counters.hpp>
#include <minihpx/perf/counter_name.hpp>

#include <memory>
#include <stdexcept>
#include <utility>

namespace minihpx::net {

namespace {

    // Transparent proxy: evaluations are served by the counter's home
    // locality. Unreachable home -> status not_available (sampling
    // paths must not throw).
    class remote_counter final : public perf::counter
    {
    public:
        remote_counter(locality& loc, std::uint32_t home,
            perf::counter_info info, std::string remote_name)
          : loc_(loc)
          , home_(home)
          , info_(std::move(info))
          , remote_name_(std::move(remote_name))
        {
        }

        perf::counter_value get_value(bool reset = false) override
        {
            perf::counter_value out;
            try
            {
                wire_counter_value const v =
                    federation_wait(loc_,
                        loc_.async<wire_counter_value>(home_,
                            action_counter_evaluate, remote_name_,
                            static_cast<std::uint8_t>(reset ? 1 : 0)));
                out.time_ns = std::get<0>(v);
                out.count = std::get<1>(v);
                out.value = std::get<2>(v);
                out.scaling = std::get<3>(v);
                out.status =
                    static_cast<perf::counter_status>(std::get<4>(v));
            }
            catch (...)
            {
                out.time_ns = perf::counter_clock_ns();
                out.status = perf::counter_status::not_available;
            }
            return out;
        }

        void reset() override
        {
            try
            {
                federation_wait(loc_,
                    loc_.async<wire_counter_value>(home_,
                        action_counter_evaluate, remote_name_,
                        static_cast<std::uint8_t>(1)));
            }
            catch (...)
            {
                // A dead home has nothing left to reset.
            }
        }

        perf::counter_info const& info() const noexcept override
        {
            return info_;
        }

    private:
        locality& loc_;
        std::uint32_t home_;
        perf::counter_info info_;
        std::string remote_name_;
    };

    void set_error(std::string* error, std::string message)
    {
        if (error)
            *error = std::move(message);
    }

}    // namespace

counter_federation::counter_federation(locality& loc)
  : loc_(loc)
  , registry_(loc.registry())
{
    registry_.set_local_locality(loc_.id());
    register_service_actions();
    register_net_counters();
    loc_.on_topology_change([this](std::uint32_t, bool) {
        registry_.notify_topology_change();
    });
    registry_.set_locality_provider(this);
}

counter_federation::~counter_federation()
{
    registry_.set_locality_provider(nullptr);
    loc_.on_topology_change(nullptr);
    unregister_net_counters();
}

std::vector<std::uint32_t> counter_federation::known_localities() const
{
    return loc_.alive_localities();
}

std::vector<perf::counter_path> counter_federation::expand_remote(
    perf::counter_path const& path)
{
    auto const home = static_cast<std::uint32_t>(path.parent_index);
    if (!loc_.peer_alive(home))
        return {};

    std::vector<perf::counter_path> out;
    try
    {
        std::vector<std::string> const names = federation_wait(loc_,
            loc_.async<std::vector<std::string>>(
                home, action_counter_expand, path.full_name()));
        out.reserve(names.size());
        for (std::string const& name : names)
            if (auto parsed = perf::parse_counter_name(name))
                out.push_back(std::move(*parsed));
    }
    catch (...)
    {
        out.clear();    // unreachable peer == no instances
    }
    return out;
}

perf::counter_ptr counter_federation::create_remote(
    perf::counter_path const& path, std::string* error)
{
    auto const home = static_cast<std::uint32_t>(path.parent_index);
    std::string const name = path.full_name();
    if (!loc_.peer_alive(home))
    {
        set_error(error,
            name + ": " + perf::locality_prefix(home) + " is not connected");
        return nullptr;
    }

    try
    {
        wire_counter_info const info = federation_wait(loc_,
            loc_.async<wire_counter_info>(
                home, action_counter_describe, name));

        perf::counter_info proxy_info;
        proxy_info.full_name = std::get<0>(info);
        proxy_info.kind = static_cast<perf::counter_kind>(std::get<1>(info));
        proxy_info.unit_of_measure = std::get<2>(info);
        proxy_info.helptext = std::get<3>(info);
        return std::make_shared<remote_counter>(
            loc_, home, std::move(proxy_info), name);
    }
    catch (std::exception const& e)
    {
        set_error(error, name + ": " + e.what());
        return nullptr;
    }
}

perf::counter_handle counter_federation::served_handle(
    std::string const& name, std::string* error)
{
    {
        std::lock_guard<std::mutex> lock(served_mutex_);
        auto const it = served_.find(name);
        if (it != served_.end())
            return it->second;
    }
    perf::counter_handle handle = registry_.resolve(name, error);
    if (handle)
    {
        std::lock_guard<std::mutex> lock(served_mutex_);
        served_.emplace(name, handle);
    }
    return handle;
}

void counter_federation::register_service_actions()
{
    counter_federation* self = this;

    loc_.actions().add(action_counter_expand,
        [self](std::string name) -> std::vector<std::string> {
            auto const path = perf::parse_counter_name(name);
            if (!path)
                throw std::runtime_error("malformed counter name: " + name);
            std::vector<std::string> out;
            for (perf::counter_path const& p :
                self->registry_.expand(*path))
                out.push_back(p.full_name());
            return out;
        });

    loc_.actions().add(action_counter_describe,
        [self](std::string name) -> wire_counter_info {
            std::string error;
            perf::counter_handle handle =
                self->served_handle(name, &error);
            if (!handle)
                throw std::runtime_error(error.empty() ?
                        "unknown counter: " + name :
                        error);
            perf::counter_info const& info = handle.info();
            return wire_counter_info{info.full_name,
                static_cast<std::uint8_t>(info.kind), info.unit_of_measure,
                info.helptext};
        });

    loc_.actions().add(action_counter_evaluate,
        [self](std::string name, std::uint8_t reset) -> wire_counter_value {
            std::string error;
            perf::counter_handle handle =
                self->served_handle(name, &error);
            if (!handle)
                throw std::runtime_error(error.empty() ?
                        "unknown counter: " + name :
                        error);
            perf::counter_value const v =
                handle.evaluate(reset != 0);
            return wire_counter_value{v.time_ns, v.count, v.value,
                v.scaling, static_cast<std::uint8_t>(v.status)};
        });
}

void counter_federation::register_net_counters()
{
    net_stats const& stats = loc_.stats();
    locality* loc = &loc_;

    struct stat_counter
    {
        char const* name;
        char const* help;
        std::atomic<std::uint64_t> const* source;
    };
    stat_counter const counters[] = {
        {"/net/count/messages-sent", "frames handed to the transport",
            &stats.messages_sent},
        {"/net/count/messages-received", "frames delivered by the transport",
            &stats.messages_received},
        {"/net/count/bytes-sent", "header+payload bytes sent",
            &stats.bytes_sent},
        {"/net/count/bytes-received", "header+payload bytes received",
            &stats.bytes_received},
        {"/net/count/invokes-sent", "remote actions issued from here",
            &stats.invokes_sent},
        {"/net/count/invokes-executed", "remote actions executed here",
            &stats.invokes_executed},
        {"/net/count/errors-received", "remote invocations that failed",
            &stats.errors_received},
        {"/net/count/heartbeats-sent", "liveness probes sent",
            &stats.heartbeats_sent},
        {"/net/count/heartbeats-received", "liveness probes received",
            &stats.heartbeats_received},
        {"/net/count/peers-lost", "peers declared dead since startup",
            &stats.peers_lost},
    };

    for (stat_counter const& c : counters)
    {
        perf::counter_registry::type_info type;
        type.type_key = c.name;
        type.kind = perf::counter_kind::monotonically_increasing;
        type.unit_of_measure = "";
        type.helptext = c.help;
        auto const* source = c.source;
        type.create = [source](perf::counter_path const& path) {
            perf::counter_info info;
            info.full_name = path.full_name();
            info.kind = perf::counter_kind::monotonically_increasing;
            return std::make_shared<perf::delta_counter>(std::move(info),
                [source] {
                    return static_cast<double>(
                        source->load(std::memory_order_relaxed));
                });
        };
        registry_.register_type(std::move(type));
        net_types_.push_back(c.name);
    }

    perf::counter_registry::type_info alive;
    alive.type_key = "/net/peers-alive";
    alive.kind = perf::counter_kind::raw;
    alive.helptext = "connected peers right now";
    alive.create = [loc](perf::counter_path const& path) {
        perf::counter_info info;
        info.full_name = path.full_name();
        info.kind = perf::counter_kind::raw;
        return std::make_shared<perf::gauge_counter>(std::move(info),
            [loc] {
                return static_cast<double>(loc->alive_localities().size()) -
                    1.0;
            });
    };
    registry_.register_type(std::move(alive));
    net_types_.push_back("/net/peers-alive");
}

void counter_federation::unregister_net_counters()
{
    for (std::string const& type : net_types_)
        registry_.unregister_type(type);
    net_types_.clear();
}

}    // namespace minihpx::net
