#include <minihpx/net/wire.hpp>

namespace minihpx::net {

namespace {

    void put_le16(std::uint8_t* out, std::uint16_t v) noexcept
    {
        out[0] = static_cast<std::uint8_t>(v & 0xff);
        out[1] = static_cast<std::uint8_t>(v >> 8);
    }

    void put_le32(std::uint8_t* out, std::uint32_t v) noexcept
    {
        for (int i = 0; i < 4; ++i)
            out[i] = static_cast<std::uint8_t>((v >> (8 * i)) & 0xff);
    }

    void put_le64(std::uint8_t* out, std::uint64_t v) noexcept
    {
        for (int i = 0; i < 8; ++i)
            out[i] = static_cast<std::uint8_t>((v >> (8 * i)) & 0xff);
    }

    std::uint16_t get_le16(std::uint8_t const* in) noexcept
    {
        return static_cast<std::uint16_t>(
            in[0] | (static_cast<std::uint16_t>(in[1]) << 8));
    }

    std::uint32_t get_le32(std::uint8_t const* in) noexcept
    {
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(in[i]) << (8 * i);
        return v;
    }

    std::uint64_t get_le64(std::uint8_t const* in) noexcept
    {
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
        return v;
    }

    bool fail(std::string* error, std::string message)
    {
        if (error)
            *error = std::move(message);
        return false;
    }

}    // namespace

char const* to_string(message_type type) noexcept
{
    switch (type)
    {
    case message_type::hello:
        return "hello";
    case message_type::hello_ack:
        return "hello-ack";
    case message_type::invoke:
        return "invoke";
    case message_type::result:
        return "result";
    case message_type::error:
        return "error";
    case message_type::heartbeat:
        return "heartbeat";
    case message_type::goodbye:
        return "goodbye";
    }
    return "<unknown>";
}

wire_header encode_header(message const& m) noexcept
{
    wire_header h{};
    put_le32(h.data() + 0, wire_magic);
    put_le16(h.data() + 4, wire_version);
    put_le16(h.data() + 6, static_cast<std::uint16_t>(m.type));
    put_le32(h.data() + 8, m.source);
    put_le32(h.data() + 12, m.dest);
    put_le64(h.data() + 16, m.request_id);
    put_le64(h.data() + 24, m.action_id);
    put_le32(h.data() + 32, static_cast<std::uint32_t>(m.payload.size()));
    return h;
}

bool decode_header(wire_header const& header, message& m,
    std::uint32_t* payload_size, std::string* error)
{
    if (get_le32(header.data() + 0) != wire_magic)
        return fail(error, "bad magic (not a minihpx::net frame)");

    std::uint16_t const version = get_le16(header.data() + 4);
    if (version != wire_version)
        return fail(error,
            "wire version mismatch: peer speaks v" + std::to_string(version) +
                ", this build speaks v" + std::to_string(wire_version));

    std::uint16_t const type = get_le16(header.data() + 6);
    if (type < static_cast<std::uint16_t>(message_type::hello) ||
        type > static_cast<std::uint16_t>(message_type::goodbye))
        return fail(error, "unknown message type " + std::to_string(type));

    std::uint32_t const size = get_le32(header.data() + 32);
    if (size > wire_max_payload)
        return fail(error,
            "payload size " + std::to_string(size) + " exceeds the " +
                std::to_string(wire_max_payload) + " byte frame limit");

    m.type = static_cast<message_type>(type);
    m.source = get_le32(header.data() + 8);
    m.dest = get_le32(header.data() + 12);
    m.request_id = get_le64(header.data() + 16);
    m.action_id = get_le64(header.data() + 24);
    m.payload.clear();
    if (payload_size)
        *payload_size = size;
    return true;
}

}    // namespace minihpx::net
