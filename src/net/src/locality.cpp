#include <minihpx/async.hpp>
#include <minihpx/net/locality.hpp>

#include <algorithm>
#include <chrono>
#include <utility>

namespace minihpx::net {

namespace {

    thread_local locality* current_locality = nullptr;

    std::uint64_t now_ns() noexcept
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
    }

    struct current_scope
    {
        explicit current_scope(locality* loc) noexcept
          : previous(std::exchange(current_locality, loc))
        {
        }
        ~current_scope() { current_locality = previous; }
        locality* previous;
    };

}    // namespace

locality* locality::current() noexcept
{
    return current_locality;
}

locality::locality(net_config config)
  : config_(std::move(config))
  , registry_(config_.registry ? config_.registry :
                                 &perf::counter_registry::instance())
  , actions_(action_registry::global())
{
    registry_->set_local_locality(config_.id);
}

locality::~locality()
{
    stop();
}

void locality::attach_transport(transport* t)
{
    transport_.store(t, std::memory_order_release);
}

void locality::on_topology_change(topology_callback cb)
{
    std::lock_guard<std::mutex> lock(peers_mutex_);
    topology_cb_ = std::move(cb);
}

bool locality::peer_alive(std::uint32_t peer) const
{
    if (peer == id())
        return !stopped_.load(std::memory_order_acquire);
    std::lock_guard<std::mutex> lock(peers_mutex_);
    auto const it = peers_.find(peer);
    return it != peers_.end() && it->second.alive;
}

std::vector<std::uint32_t> locality::alive_localities() const
{
    std::vector<std::uint32_t> out{id()};
    {
        std::lock_guard<std::mutex> lock(peers_mutex_);
        for (auto const& [peer, state] : peers_)
            if (state.alive)
                out.push_back(peer);
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<std::uint32_t> locality::live_peers_snapshot() const
{
    std::vector<std::uint32_t> out;
    std::lock_guard<std::mutex> lock(peers_mutex_);
    for (auto const& [peer, state] : peers_)
        if (state.alive)
            out.push_back(peer);
    return out;
}

void locality::peer_up(std::uint32_t peer)
{
    topology_callback cb;
    {
        std::lock_guard<std::mutex> lock(peers_mutex_);
        peer_state& state = peers_[peer];
        bool const was_alive = state.alive;
        state.alive = true;
        state.last_rx_ns = now_ns();
        if (was_alive)
            return;
        cb = topology_cb_;
    }
    if (cb)
        cb(peer, true);
}

void locality::peer_down(std::uint32_t peer, std::string const& reason)
{
    topology_callback cb;
    {
        std::lock_guard<std::mutex> lock(peers_mutex_);
        auto const it = peers_.find(peer);
        if (it == peers_.end() || !it->second.alive)
            return;
        it->second.alive = false;
        cb = topology_cb_;
    }
    stats_.peers_lost.fetch_add(1, std::memory_order_relaxed);
    fail_pending_to(peer, reason);
    if (cb)
        cb(peer, false);
}

void locality::fail_pending_to(std::uint32_t peer, std::string const& reason)
{
    std::vector<promise<std::vector<std::uint8_t>>> doomed;
    {
        std::lock_guard<std::mutex> lock(pending_mutex_);
        for (auto it = pending_.begin(); it != pending_.end();)
        {
            if (it->second.dest == peer)
            {
                doomed.push_back(std::move(it->second.result));
                it = pending_.erase(it);
            }
            else
            {
                ++it;
            }
        }
    }
    for (auto& p : doomed)
        p.set_exception(
            std::make_exception_ptr(peer_unreachable(peer, reason)));
}

bool locality::send_frame(message const& m)
{
    if (m.dest == id())
    {
        // Loopback: no transport round trip, straight back in.
        deliver(m);
        return true;
    }

    transport* t = transport_.load(std::memory_order_acquire);
    if (!t)
        return false;
    if (!t->send(m))
        return false;
    stats_.messages_sent.fetch_add(1, std::memory_order_relaxed);
    stats_.bytes_sent.fetch_add(
        wire_header_size + m.payload.size(), std::memory_order_relaxed);
    return true;
}

future<std::vector<std::uint8_t>> locality::invoke(std::uint32_t dest,
    std::uint64_t action_id, std::vector<std::uint8_t> args)
{
    promise<std::vector<std::uint8_t>> p;
    future<std::vector<std::uint8_t>> f = p.get_future();

    if (stopped_.load(std::memory_order_acquire))
    {
        p.set_exception(std::make_exception_ptr(
            peer_unreachable(dest, "this locality is stopped")));
        return f;
    }
    if (dest != id() && !peer_alive(dest))
    {
        p.set_exception(std::make_exception_ptr(
            peer_unreachable(dest, "peer is not connected")));
        return f;
    }

    std::uint64_t const rid =
        next_request_id_.fetch_add(1, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(pending_mutex_);
        pending_request& req = pending_[rid];
        req.result = std::move(p);
        req.dest = dest;
        req.deadline_ns = config_.request_timeout_ms ?
            now_ns() + config_.request_timeout_ms * 1'000'000 :
            0;
    }

    message m;
    m.type = message_type::invoke;
    m.source = id();
    m.dest = dest;
    m.request_id = rid;
    m.action_id = action_id;
    m.payload = std::move(args);

    stats_.invokes_sent.fetch_add(1, std::memory_order_relaxed);
    if (!send_frame(m))
    {
        promise<std::vector<std::uint8_t>> orphan;
        bool found = false;
        {
            std::lock_guard<std::mutex> lock(pending_mutex_);
            auto const it = pending_.find(rid);
            if (it != pending_.end())
            {
                orphan = std::move(it->second.result);
                pending_.erase(it);
                found = true;
            }
        }
        if (found)
            orphan.set_exception(std::make_exception_ptr(
                peer_unreachable(dest, "transport send failed")));
    }
    return f;
}

void locality::deliver(message m)
{
    stats_.messages_received.fetch_add(1, std::memory_order_relaxed);
    stats_.bytes_received.fetch_add(
        wire_header_size + m.payload.size(), std::memory_order_relaxed);

    if (m.source != id())
    {
        std::lock_guard<std::mutex> lock(peers_mutex_);
        auto const it = peers_.find(m.source);
        if (it != peers_.end() && it->second.alive)
            it->second.last_rx_ns = now_ns();
    }

    switch (m.type)
    {
    case message_type::invoke:
    {
        if (!config_.inline_handlers && minihpx::detail::spawn_target_ptr())
        {
            // Handlers run as tasks: a blocking handler parks a worker,
            // not the reader thread that carries its nested replies.
            // The token keeps stop() from returning (and the locality
            // from being destroyed) while the task body is running.
            minihpx::apply(
                [this, m = std::move(m), token = inflight_token()]() mutable {
                    execute_invoke(std::move(m));
                });
        }
        else
        {
            execute_invoke(std::move(m));
        }
        break;
    }
    case message_type::result:
    case message_type::error:
    {
        promise<std::vector<std::uint8_t>> p;
        bool found = false;
        {
            std::lock_guard<std::mutex> lock(pending_mutex_);
            auto const it = pending_.find(m.request_id);
            if (it != pending_.end())
            {
                p = std::move(it->second.result);
                pending_.erase(it);
                found = true;
            }
        }
        if (!found)
            break;    // request already failed (timeout, peer_down)
        if (m.type == message_type::result)
        {
            p.set_value(std::move(m.payload));
        }
        else
        {
            stats_.errors_received.fetch_add(1, std::memory_order_relaxed);
            p.set_exception(std::make_exception_ptr(remote_error(m.source,
                std::string(m.payload.begin(), m.payload.end()))));
        }
        break;
    }
    case message_type::heartbeat:
        stats_.heartbeats_received.fetch_add(1, std::memory_order_relaxed);
        break;
    case message_type::goodbye:
        peer_down(m.source, "peer said goodbye");
        break;
    case message_type::hello:
    case message_type::hello_ack:
        // Handshake frames are consumed by the transport; stray ones
        // only refresh liveness (above).
        break;
    }
}

void locality::execute_invoke(message m)
{
    current_scope scope(this);

    std::uint32_t const source = m.source;
    std::uint64_t const rid = m.request_id;
    result_sender reply(
        [this, source, rid](std::vector<std::uint8_t> bytes) {
            message r;
            r.type = message_type::result;
            r.source = id();
            r.dest = source;
            r.request_id = rid;
            r.payload = std::move(bytes);
            send_frame(r);
        },
        [this, source, rid](std::string what) {
            message r;
            r.type = message_type::error;
            r.source = id();
            r.dest = source;
            r.request_id = rid;
            r.payload.assign(what.begin(), what.end());
            send_frame(r);
        });

    action_registry::entry const* entry = actions_.find(m.action_id);
    if (!entry)
    {
        reply.send_error(
            "unknown action id " + std::to_string(m.action_id) +
            " (not registered before locality construction?)");
        return;
    }

    stats_.invokes_executed.fetch_add(1, std::memory_order_relaxed);
    input_archive in(m.payload);
    entry->handler(in, std::move(reply));
}

std::shared_ptr<void> locality::inflight_token()
{
    {
        std::lock_guard<std::mutex> lock(inflight_mutex_);
        ++inflight_handlers_;
    }
    // The deleter fires when the dispatched task's closure is destroyed
    // — after the handler body ran (or the task was dropped unrun).
    // Notify under the lock: the draining thread may destroy this
    // object the moment the count reaches zero.
    return std::shared_ptr<void>(static_cast<void*>(nullptr),
        [this](void*) {
            std::lock_guard<std::mutex> lock(inflight_mutex_);
            --inflight_handlers_;
            if (inflight_handlers_ == 0)
                inflight_cv_.notify_all();
        });
}

void locality::drain_inflight()
{
    std::unique_lock<std::mutex> lock(inflight_mutex_);
    inflight_cv_.wait(lock, [this] { return inflight_handlers_ == 0; });
}

void locality::start_heartbeats()
{
    if (config_.heartbeat_interval_ms == 0 && config_.request_timeout_ms == 0)
        return;
    if (heartbeat_thread_.joinable())
        return;
    heartbeat_thread_ = std::thread([this] { heartbeat_loop(); });
}

void locality::heartbeat_loop()
{
    std::uint64_t const interval_ms = config_.heartbeat_interval_ms ?
        config_.heartbeat_interval_ms :
        std::max<std::uint64_t>(1, config_.request_timeout_ms / 4);
    std::uint64_t const silence_limit_ns = config_.heartbeat_interval_ms ?
        config_.heartbeat_interval_ms * config_.heartbeat_miss_limit *
            1'000'000 :
        0;

    std::unique_lock<std::mutex> lk(heartbeat_mutex_);
    while (!heartbeat_stop_)
    {
        heartbeat_cv_.wait_for(lk, std::chrono::milliseconds(interval_ms),
            [this] { return heartbeat_stop_; });
        if (heartbeat_stop_)
            break;
        lk.unlock();

        std::uint64_t const now = now_ns();

        if (config_.heartbeat_interval_ms != 0)
        {
            for (std::uint32_t peer : live_peers_snapshot())
            {
                message hb;
                hb.type = message_type::heartbeat;
                hb.source = id();
                hb.dest = peer;
                if (send_frame(hb))
                    stats_.heartbeats_sent.fetch_add(
                        1, std::memory_order_relaxed);
            }

            std::vector<std::uint32_t> silent;
            {
                std::lock_guard<std::mutex> lock(peers_mutex_);
                for (auto const& [peer, state] : peers_)
                    if (state.alive &&
                        now - state.last_rx_ns > silence_limit_ns)
                        silent.push_back(peer);
            }
            for (std::uint32_t peer : silent)
                peer_down(peer,
                    "no traffic for " +
                        std::to_string(config_.heartbeat_miss_limit) +
                        " heartbeat intervals");
        }

        if (config_.request_timeout_ms != 0)
        {
            std::vector<std::pair<std::uint32_t,
                promise<std::vector<std::uint8_t>>>>
                expired;
            {
                std::lock_guard<std::mutex> lock(pending_mutex_);
                for (auto it = pending_.begin(); it != pending_.end();)
                {
                    if (it->second.deadline_ns != 0 &&
                        now > it->second.deadline_ns)
                    {
                        expired.emplace_back(it->second.dest,
                            std::move(it->second.result));
                        it = pending_.erase(it);
                    }
                    else
                    {
                        ++it;
                    }
                }
            }
            for (auto& [dest, p] : expired)
                p.set_exception(std::make_exception_ptr(peer_unreachable(
                    dest,
                    "request timed out after " +
                        std::to_string(config_.request_timeout_ms) + "ms")));
        }

        lk.lock();
    }
}

void locality::stop()
{
    if (stopped_.exchange(true, std::memory_order_acq_rel))
        return;

    {
        std::lock_guard<std::mutex> lk(heartbeat_mutex_);
        heartbeat_stop_ = true;
    }
    heartbeat_cv_.notify_all();
    if (heartbeat_thread_.joinable())
        heartbeat_thread_.join();

    for (std::uint32_t peer : live_peers_snapshot())
    {
        message bye;
        bye.type = message_type::goodbye;
        bye.source = id();
        bye.dest = peer;
        send_frame(bye);
    }

    for (std::uint32_t peer : live_peers_snapshot())
        peer_down(peer, "this locality is stopping");

    if (transport* t =
            transport_.exchange(nullptr, std::memory_order_acq_rel))
        t->close();

    // Transport closed (reader threads joined), so no new handler can
    // be dispatched; wait out the ones already on the runtime.
    drain_inflight();
}

void locality::kill()
{
    if (stopped_.exchange(true, std::memory_order_acq_rel))
        return;

    {
        std::lock_guard<std::mutex> lk(heartbeat_mutex_);
        heartbeat_stop_ = true;
    }
    heartbeat_cv_.notify_all();
    if (heartbeat_thread_.joinable())
        heartbeat_thread_.join();

    if (transport* t =
            transport_.exchange(nullptr, std::memory_order_acq_rel))
        t->close();

    for (std::uint32_t peer : live_peers_snapshot())
        peer_down(peer, "this locality was killed");

    drain_inflight();
}

}    // namespace minihpx::net
