#include <minihpx/net/action.hpp>

#include <stdexcept>

namespace minihpx::net {

void action_registry::add_erased(std::string name, action_handler handler)
{
    std::uint64_t const id = fnv1a64(name);
    auto e = std::make_shared<entry>();
    e->name = std::move(name);
    e->handler = std::move(handler);

    std::lock_guard<std::mutex> lock(mutex_);
    auto const [it, inserted] = table_.emplace(id, e);
    if (!inserted)
    {
        if (it->second->name == e->name)
            throw std::invalid_argument(
                "action \"" + e->name + "\" already registered");
        throw std::invalid_argument("action id collision: \"" + e->name +
            "\" and \"" + it->second->name + "\" share fnv1a64 id " +
            std::to_string(id));
    }
}

action_registry::entry const* action_registry::find(std::uint64_t id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto const it = table_.find(id);
    return it == table_.end() ? nullptr : it->second.get();
}

std::vector<std::string> action_registry::names() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(table_.size());
    for (auto const& [id, e] : table_)
        out.push_back(e->name);
    return out;
}

std::size_t action_registry::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return table_.size();
}

std::map<std::uint64_t, std::shared_ptr<action_registry::entry>>
action_registry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return table_;
}

action_registry& action_registry::global()
{
    static action_registry instance;
    return instance;
}

}    // namespace minihpx::net
