// Wire framing for the locality boundary.
//
// Every message is one fixed-size little-endian header followed by an
// opaque payload (encoded with net/serialize.hpp). The header is
// versioned: a peer speaking a different wire revision is rejected at
// decode time with a clear error instead of silently misparsing — the
// classic rolling-upgrade failure mode for binary protocols.
//
//   offset  size  field
//        0     4  magic          'mhx1' (0x3178686d LE)
//        4     2  version        wire_version
//        6     2  type           message_type
//        8     4  source         sending locality id
//       12     4  dest           receiving locality id
//       16     8  request_id     correlates request/reply pairs
//       24     8  action_id      fnv1a-64 of the action name (invoke)
//       32     4  payload_size   bytes following the header
#pragma once

#include <minihpx/net/serialize.hpp>

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace minihpx::net {

inline constexpr std::uint32_t wire_magic = 0x3178686d;    // "mhx1"
inline constexpr std::uint16_t wire_version = 1;
inline constexpr std::size_t wire_header_size = 36;

// Payload ceiling: far above anything the runtime sends, low enough
// that a corrupt size field cannot trigger a multi-gigabyte allocation.
inline constexpr std::uint32_t wire_max_payload = 64u << 20;

enum class message_type : std::uint16_t
{
    hello = 1,         // connector announces its locality id
    hello_ack = 2,     // acceptor answers with its own
    invoke = 3,        // run action_id with the payload's arguments
    result = 4,        // invoke succeeded; payload = serialized result
    error = 5,         // invoke failed; payload = error string
    heartbeat = 6,     // liveness probe (no payload)
    goodbye = 7,       // orderly shutdown announcement (no payload)
};

char const* to_string(message_type type) noexcept;

struct message
{
    message_type type = message_type::invoke;
    std::uint32_t source = 0;
    std::uint32_t dest = 0;
    std::uint64_t request_id = 0;
    std::uint64_t action_id = 0;
    std::vector<std::uint8_t> payload;
};

using wire_header = std::array<std::uint8_t, wire_header_size>;

// Header for `m` (payload travels separately, right after it).
wire_header encode_header(message const& m) noexcept;

// Decode a header into `m` (payload left empty; its size is returned
// via *payload_size). false + *error on bad magic, unknown version,
// unknown type, or oversized payload.
bool decode_header(wire_header const& header, message& m,
    std::uint32_t* payload_size, std::string* error);

// FNV-1a 64, the stable cross-process action id: both sides hash the
// registered name, so no id-exchange handshake is needed.
constexpr std::uint64_t fnv1a64(std::string_view text) noexcept
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (char c : text)
    {
        hash ^= static_cast<std::uint8_t>(c);
        hash *= 0x100000001b3ull;
    }
    return hash;
}

}    // namespace minihpx::net
