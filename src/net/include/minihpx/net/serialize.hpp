// Compact binary serialization for the locality boundary.
//
// Everything that crosses the wire — action arguments, results,
// counter-federation replies — goes through these archives. The
// encoding is explicit little-endian with length-prefixed containers,
// so the same bytes decode on every peer regardless of host endianness
// or struct layout; the input side is bounds-checked and throws
// serialization_error instead of reading past the payload (a truncated
// or hostile frame must never become memory corruption).
//
// Supported out of the box: bool, integral and floating-point types,
// enums, std::string, and std::vector / std::pair / std::tuple /
// std::optional of supported types — enough to marshal any action
// signature built from value types. Extend by overloading save()/load()
// in namespace minihpx::net for your type.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

namespace minihpx::net {

class serialization_error : public std::runtime_error
{
public:
    using std::runtime_error::runtime_error;
};

class output_archive
{
public:
    output_archive() = default;

    void write_bytes(void const* data, std::size_t size)
    {
        auto const* bytes = static_cast<std::uint8_t const*>(data);
        buffer_.insert(buffer_.end(), bytes, bytes + size);
    }

    template <typename T,
        typename = std::enable_if_t<std::is_unsigned_v<T>>>
    void write_le(T value)
    {
        for (std::size_t i = 0; i < sizeof(T); ++i)
            buffer_.push_back(
                static_cast<std::uint8_t>((value >> (8 * i)) & 0xff));
    }

    std::vector<std::uint8_t> const& data() const noexcept { return buffer_; }
    std::vector<std::uint8_t> take() noexcept { return std::move(buffer_); }
    std::size_t size() const noexcept { return buffer_.size(); }

private:
    std::vector<std::uint8_t> buffer_;
};

class input_archive
{
public:
    input_archive(std::uint8_t const* data, std::size_t size) noexcept
      : data_(data)
      , size_(size)
    {
    }

    explicit input_archive(std::vector<std::uint8_t> const& bytes) noexcept
      : input_archive(bytes.data(), bytes.size())
    {
    }

    void read_bytes(void* out, std::size_t size)
    {
        require(size);
        std::memcpy(out, data_ + pos_, size);
        pos_ += size;
    }

    template <typename T,
        typename = std::enable_if_t<std::is_unsigned_v<T>>>
    T read_le()
    {
        require(sizeof(T));
        T value = 0;
        for (std::size_t i = 0; i < sizeof(T); ++i)
            value |= static_cast<T>(data_[pos_ + i]) << (8 * i);
        pos_ += sizeof(T);
        return value;
    }

    std::size_t remaining() const noexcept { return size_ - pos_; }
    bool exhausted() const noexcept { return pos_ == size_; }

private:
    void require(std::size_t size) const
    {
        if (size_ - pos_ < size)
            throw serialization_error("truncated payload: need " +
                std::to_string(size) + " bytes, have " +
                std::to_string(size_ - pos_));
    }

    std::uint8_t const* data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

// ---- save/load ----------------------------------------------------------

namespace detail {

    // Maps a value type to the unsigned carrier of equal width.
    template <std::size_t Size>
    struct carrier;
    template <>
    struct carrier<1>
    {
        using type = std::uint8_t;
    };
    template <>
    struct carrier<2>
    {
        using type = std::uint16_t;
    };
    template <>
    struct carrier<4>
    {
        using type = std::uint32_t;
    };
    template <>
    struct carrier<8>
    {
        using type = std::uint64_t;
    };
    template <typename T>
    using carrier_t = typename carrier<sizeof(T)>::type;

    template <typename T>
    inline constexpr bool is_scalar_encodable_v =
        std::is_arithmetic_v<T> || std::is_enum_v<T>;

}    // namespace detail

template <typename T>
std::enable_if_t<detail::is_scalar_encodable_v<T>> save(
    output_archive& ar, T value)
{
    using C = detail::carrier_t<T>;
    C bits;
    std::memcpy(&bits, &value, sizeof(T));
    ar.write_le(bits);
}

inline void save(output_archive& ar, std::string_view value)
{
    ar.write_le(static_cast<std::uint32_t>(value.size()));
    ar.write_bytes(value.data(), value.size());
}

inline void save(output_archive& ar, std::string const& value)
{
    save(ar, std::string_view(value));
}

inline void save(output_archive& ar, char const* value)
{
    save(ar, std::string_view(value));
}

template <typename T>
void save(output_archive& ar, std::vector<T> const& values)
{
    ar.write_le(static_cast<std::uint32_t>(values.size()));
    for (T const& v : values)
        save(ar, v);
}

template <typename A, typename B>
void save(output_archive& ar, std::pair<A, B> const& value)
{
    save(ar, value.first);
    save(ar, value.second);
}

template <typename... Ts>
void save(output_archive& ar, std::tuple<Ts...> const& value)
{
    std::apply([&ar](Ts const&... parts) { (save(ar, parts), ...); }, value);
}

template <typename T>
void save(output_archive& ar, std::optional<T> const& value)
{
    save(ar, static_cast<std::uint8_t>(value.has_value() ? 1 : 0));
    if (value)
        save(ar, *value);
}

// load<T>(ar): tag-dispatched so tuple/vector elements recurse cleanly.
template <typename T>
struct loader;

template <typename T>
T load(input_archive& ar)
{
    return loader<T>::apply(ar);
}

template <typename T>
struct loader
{
    static_assert(detail::is_scalar_encodable_v<T>,
        "no load() overload for this type");

    static T apply(input_archive& ar)
    {
        using C = detail::carrier_t<T>;
        C const bits = ar.template read_le<C>();
        T value;
        std::memcpy(&value, &bits, sizeof(T));
        return value;
    }
};

template <>
struct loader<std::string>
{
    static std::string apply(input_archive& ar)
    {
        auto const size = ar.read_le<std::uint32_t>();
        std::string out(size, '\0');
        ar.read_bytes(out.data(), size);
        return out;
    }
};

template <typename T>
struct loader<std::vector<T>>
{
    static std::vector<T> apply(input_archive& ar)
    {
        auto const size = ar.read_le<std::uint32_t>();
        std::vector<T> out;
        out.reserve(std::min<std::size_t>(size, 4096));
        for (std::uint32_t i = 0; i < size; ++i)
            out.push_back(load<T>(ar));
        return out;
    }
};

template <typename A, typename B>
struct loader<std::pair<A, B>>
{
    static std::pair<A, B> apply(input_archive& ar)
    {
        // Separate statements: evaluation order inside a braced pair
        // of function arguments would be unspecified.
        A a = load<A>(ar);
        B b = load<B>(ar);
        return {std::move(a), std::move(b)};
    }
};

template <typename... Ts>
struct loader<std::tuple<Ts...>>
{
    static std::tuple<Ts...> apply(input_archive& ar)
    {
        return load_impl(ar, std::index_sequence_for<Ts...>{});
    }

private:
    template <std::size_t... Is>
    static std::tuple<Ts...> load_impl(
        input_archive& ar, std::index_sequence<Is...>)
    {
        std::tuple<std::optional<Ts>...> parts;
        // Fold over comma: left-to-right, the wire order save() used.
        ((std::get<Is>(parts).emplace(load<Ts>(ar))), ...);
        return std::tuple<Ts...>{std::move(*std::get<Is>(parts))...};
    }
};

template <typename T>
struct loader<std::optional<T>>
{
    static std::optional<T> apply(input_archive& ar)
    {
        if (load<std::uint8_t>(ar) == 0)
            return std::nullopt;
        return load<T>(ar);
    }
};

}    // namespace minihpx::net
