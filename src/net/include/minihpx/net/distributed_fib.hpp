// Distributed fibonacci: the canonical cross-locality workload.
//
// The classic task-parallel fib benchmark (paper §V) with one twist:
// above `threshold`, the fib(n-1) branch is shipped to the next
// locality round-robin while fib(n-2) recurses locally, so every
// locality both issues and serves remote spawns. Below the threshold
// the subtree is computed inline (the usual grain-size control).
//
// Everything composes through futures — the action handler returns a
// future and never blocks, so the same code runs on the TCP mesh (with
// a runtime) and single-threaded on the sim fabric.
//
// register_distributed_fib() must run before localities are
// constructed (the action table is snapshotted at construction).
#pragma once

#include <minihpx/future.hpp>
#include <minihpx/net/action.hpp>
#include <minihpx/net/locality.hpp>

#include <cstdint>
#include <utility>
#include <vector>

namespace minihpx::net {

inline constexpr char const* distributed_fib_action =
    "minihpx/examples/distributed-fib";

inline std::uint64_t fib_sequential(std::uint32_t n) noexcept
{
    if (n < 2)
        return n;
    std::uint64_t a = 0, b = 1;
    for (std::uint32_t i = 2; i <= n; ++i)
    {
        std::uint64_t const next = a + b;
        a = b;
        b = next;
    }
    return b;
}

inline future<std::uint64_t> distributed_fib(
    locality& loc, std::uint32_t n, std::uint32_t threshold)
{
    if (n < 2 || n < threshold || loc.num_localities() < 2)
        return make_ready_future(fib_sequential(n));

    std::uint32_t const dest = (loc.id() + 1) % loc.num_localities();
    std::vector<future<std::uint64_t>> branches;
    branches.reserve(2);
    branches.push_back(loc.async<std::uint64_t>(
        dest, distributed_fib_action, n - 1, threshold));
    branches.push_back(distributed_fib(loc, n - 2, threshold));

    return when_all(std::move(branches))
        .then([](future<std::vector<future<std::uint64_t>>> ready) {
            std::vector<future<std::uint64_t>> parts = ready.get();
            return parts[0].get() + parts[1].get();
        });
}

inline void register_distributed_fib()
{
    if (action_registry::global().contains(distributed_fib_action))
        return;
    register_action(distributed_fib_action,
        [](std::uint32_t n, std::uint32_t threshold) {
            return distributed_fib(*locality::current(), n, threshold);
        });
}

}    // namespace minihpx::net
