// minihpx::net — multi-locality runtime with cross-locality counter
// federation. Umbrella header.
//
//   serialize.hpp        bounds-checked little-endian archives
//   wire.hpp             versioned frame header, message types, fnv1a64
//   action.hpp           named remote entry points, typed registration
//   locality.hpp         endpoint: invoke/async, liveness, lifecycle
//   tcp.hpp              loopback TCP full-mesh transport
//   sim_fabric.hpp       deterministic in-process virtual network
//   federation.hpp       counter registry federation + /net counters
//   distributed_fib.hpp  the canonical cross-locality workload
#pragma once

#include <minihpx/net/action.hpp>
#include <minihpx/net/distributed_fib.hpp>
#include <minihpx/net/federation.hpp>
#include <minihpx/net/locality.hpp>
#include <minihpx/net/serialize.hpp>
#include <minihpx/net/sim_fabric.hpp>
#include <minihpx/net/tcp.hpp>
#include <minihpx/net/wire.hpp>
