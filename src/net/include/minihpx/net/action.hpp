// Action registry: named remote entry points.
//
// An action is a callable registered under a string name; the wire
// carries fnv1a64(name) so both sides agree on ids without a handshake
// (see wire.hpp). Registration deduces the argument tuple from the
// callable's signature, so marshalling is invisible at the call site:
//
//   std::uint64_t fib_leaf(std::uint32_t n);
//   net::register_action("app/fib-leaf", &fib_leaf);
//   ...
//   future<std::uint64_t> r =
//       net::async<std::uint64_t>(loc, /*dest=*/1, "app/fib-leaf", 30u);
//
// Handlers may return a plain value (computed before the reply is
// sent) or a future<R> (the reply is sent by a continuation when the
// future becomes ready). The future form is what makes nested remote
// calls safe: a distributed-fib handler issues its own net::async and
// returns immediately instead of blocking the thread that is carrying
// replies.
//
// register_action() adds to a process-global table; each net::locality
// snapshots that table at construction so in-process multi-locality
// runs (threads mode, sim fabric) dispatch against per-locality state
// captured at bind time. Register every action before constructing
// localities.
#pragma once

#include <minihpx/net/serialize.hpp>
#include <minihpx/net/wire.hpp>

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

namespace minihpx {
    template <typename T>
    class future;
}

namespace minihpx::net {

// One-shot reply channel handed to a running action. Exactly one of
// send_value/send_error must be called (the dispatch wrapper below
// guarantees this for registered handlers).
class result_sender
{
public:
    using value_fn = std::function<void(std::vector<std::uint8_t>)>;
    using error_fn = std::function<void(std::string)>;

    result_sender() = default;
    result_sender(value_fn on_value, error_fn on_error)
      : on_value_(std::move(on_value))
      , on_error_(std::move(on_error))
    {
    }

    void send_value(std::vector<std::uint8_t> bytes)
    {
        if (value_fn fn = std::exchange(on_value_, nullptr))
        {
            on_error_ = nullptr;
            fn(std::move(bytes));
        }
    }

    void send_error(std::string what)
    {
        if (error_fn fn = std::exchange(on_error_, nullptr))
        {
            on_value_ = nullptr;
            fn(std::move(what));
        }
    }

    bool pending() const noexcept
    {
        return static_cast<bool>(on_value_) || static_cast<bool>(on_error_);
    }

private:
    value_fn on_value_;
    error_fn on_error_;
};

// Type-erased handler: decode arguments from the archive, run, reply.
using action_handler =
    std::function<void(input_archive&, result_sender)>;

namespace detail {

    template <typename T>
    struct is_future : std::false_type
    {
    };
    template <typename T>
    struct is_future<minihpx::future<T>> : std::true_type
    {
        using value_type = T;
    };

    // Signature introspection for free functions, function pointers,
    // and functors/lambdas (via operator()).
    template <typename F>
    struct action_traits : action_traits<decltype(&F::operator())>
    {
    };
    template <typename R, typename... Args>
    struct action_traits<R (*)(Args...)>
    {
        using result_type = R;
        using args_tuple = std::tuple<std::decay_t<Args>...>;
    };
    template <typename R, typename... Args>
    struct action_traits<R(Args...)> : action_traits<R (*)(Args...)>
    {
    };
    template <typename C, typename R, typename... Args>
    struct action_traits<R (C::*)(Args...)> : action_traits<R (*)(Args...)>
    {
    };
    template <typename C, typename R, typename... Args>
    struct action_traits<R (C::*)(Args...) const>
      : action_traits<R (*)(Args...)>
    {
    };

    template <typename F>
    action_handler make_action_handler(F fn);

}    // namespace detail

// Name -> handler table, keyed by the fnv1a64 wire id. Copyable so a
// locality can snapshot the global table; thread-safe for concurrent
// add/find (dispatch happens on reader threads while tests register).
class action_registry
{
public:
    struct entry
    {
        std::string name;
        action_handler handler;
    };

    action_registry() = default;
    action_registry(action_registry const& other) : table_(other.snapshot())
    {
    }
    action_registry& operator=(action_registry const&) = delete;

    // Register `fn` under `name`. Throws std::invalid_argument on a
    // duplicate name or (astronomically unlikely) an fnv1a64 collision
    // between distinct names — silently dispatching the wrong handler
    // would be far worse than failing registration.
    template <typename F>
    void add(std::string name, F fn)
    {
        add_erased(std::move(name),
            detail::make_action_handler(std::move(fn)));
    }

    void add_erased(std::string name, action_handler handler);

    // nullptr when the id is unknown; the returned entry stays valid
    // for the registry's lifetime (entries are never removed).
    entry const* find(std::uint64_t id) const;

    bool contains(std::string_view name) const
    {
        return find(fnv1a64(name)) != nullptr;
    }

    std::vector<std::string> names() const;
    std::size_t size() const;

    // The process-global table that register_action() fills and every
    // locality snapshots at construction.
    static action_registry& global();

private:
    std::map<std::uint64_t, std::shared_ptr<entry>> snapshot() const;

    mutable std::mutex mutex_;
    std::map<std::uint64_t, std::shared_ptr<entry>> table_;
};

// Register on the process-global table (the common case).
template <typename F>
void register_action(std::string name, F fn)
{
    action_registry::global().add(std::move(name), std::move(fn));
}

// ---- handler adapter ----------------------------------------------------

namespace detail {

    template <typename R>
    void reply_with_value(result_sender& reply, R&& value)
    {
        output_archive out;
        save(out, std::forward<R>(value));
        reply.send_value(out.take());
    }

    template <typename F>
    action_handler make_action_handler(F fn)
    {
        using traits = action_traits<std::decay_t<F>>;
        using args_tuple = typename traits::args_tuple;
        using result_type = typename traits::result_type;

        return [fn = std::move(fn)](
                   input_archive& ar, result_sender reply) mutable {
            args_tuple args;
            try
            {
                args = load<args_tuple>(ar);
            }
            catch (std::exception const& e)
            {
                reply.send_error(
                    std::string("argument decode failed: ") + e.what());
                return;
            }

            try
            {
                if constexpr (is_future<result_type>::value)
                {
                    using value_type =
                        typename is_future<result_type>::value_type;
                    // Deferred reply: don't block this thread (it may
                    // be the one that delivers our nested replies) —
                    // ship the result from the ready-continuation.
                    auto deferred =
                        std::make_shared<result_sender>(std::move(reply));
                    std::apply(fn, std::move(args))
                        .then([deferred](minihpx::future<value_type> ready) {
                            try
                            {
                                if constexpr (std::is_void_v<value_type>)
                                {
                                    ready.get();
                                    deferred->send_value({});
                                }
                                else
                                {
                                    reply_with_value(*deferred, ready.get());
                                }
                            }
                            catch (std::exception const& e)
                            {
                                deferred->send_error(e.what());
                            }
                            catch (...)
                            {
                                deferred->send_error(
                                    "unknown exception in action");
                            }
                        });
                }
                else if constexpr (std::is_void_v<result_type>)
                {
                    std::apply(fn, std::move(args));
                    reply.send_value({});
                }
                else
                {
                    reply_with_value(reply, std::apply(fn, std::move(args)));
                }
            }
            catch (std::exception const& e)
            {
                reply.send_error(e.what());
            }
            catch (...)
            {
                reply.send_error("unknown exception in action");
            }
        };
    }

}    // namespace detail

}    // namespace minihpx::net
