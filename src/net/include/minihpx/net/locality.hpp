// net::locality — one endpoint of a multi-locality minihpx run.
//
// A locality owns its id, a snapshot of the action table, a pending-
// request map, per-peer liveness state, and traffic statistics (the
// /net{locality#H/total}/* counters). It is transport-agnostic: the
// TCP mesh (tcp.hpp) and the simulator fabric (sim_fabric.hpp) both
// push inbound frames through deliver() and carry outbound frames via
// the attached transport.
//
// Remote invocation:
//
//   future<R> f = net::async<R>(loc, dest, "action/name", args...);
//
// marshals the arguments, sends an invoke frame, and completes the
// future when the matching result/error frame arrives. Failures
// propagate as exceptions through the future:
//   - remote_error        the action threw (or decode failed) remotely
//   - peer_unreachable    the peer died (EOF, heartbeat misses,
//                         partition) or the request timed out
//
// Inbound invokes run as minihpx tasks when a runtime is active, so a
// handler that blocks cannot wedge the reader thread that feeds it;
// with inline_handlers (sim fabric) they run on the delivering thread.
#pragma once

#include <minihpx/future.hpp>
#include <minihpx/net/action.hpp>
#include <minihpx/net/serialize.hpp>
#include <minihpx/net/wire.hpp>
#include <minihpx/perf/registry.hpp>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace minihpx::net {

// The request's peer is gone (or never answered): connection EOF,
// heartbeat-miss eviction, fabric partition, or request timeout.
class peer_unreachable : public std::runtime_error
{
public:
    peer_unreachable(std::uint32_t peer, std::string const& reason)
      : std::runtime_error("locality#" + std::to_string(peer) +
            " unreachable: " + reason)
      , peer_(peer)
    {
    }

    std::uint32_t peer() const noexcept { return peer_; }

private:
    std::uint32_t peer_;
};

// The action ran (or was dispatched) remotely and failed; carries the
// remote what() string and the locality it came from.
class remote_error : public std::runtime_error
{
public:
    remote_error(std::uint32_t origin, std::string const& what)
      : std::runtime_error(
            "locality#" + std::to_string(origin) + ": " + what)
      , origin_(origin)
    {
    }

    std::uint32_t origin() const noexcept { return origin_; }

private:
    std::uint32_t origin_;
};

struct net_config
{
    std::uint32_t id = 0;
    std::uint32_t num_localities = 1;

    // Liveness probing (TCP mode). 0 disables the heartbeat thread;
    // a peer is declared dead after miss_limit silent intervals.
    std::uint64_t heartbeat_interval_ms = 250;
    std::uint32_t heartbeat_miss_limit = 8;

    // Fail a pending request exceptionally after this long without a
    // reply (checked by the heartbeat thread). 0 = wait forever.
    std::uint64_t request_timeout_ms = 0;

    // Run inbound action handlers on the delivering thread instead of
    // spawning minihpx tasks (sim fabric: single-threaded, no runtime).
    bool inline_handlers = false;

    // Counter registry this locality homes its counters in. Defaults
    // to perf::counter_registry::instance(); in-process multi-locality
    // runs give each locality its own registry.
    perf::counter_registry* registry = nullptr;

    // Deterministic wait hook (sim fabric): invoked repeatedly while a
    // federation query waits for its reply on a non-task thread; must
    // make progress (deliver one message) or return false. TCP mode
    // leaves this empty and blocks on the future instead.
    std::function<bool()> pump;
};

// Traffic statistics, exported as /net{locality#H/total}/* counters by
// counter_federation::register_net_counters().
struct net_stats
{
    std::atomic<std::uint64_t> messages_sent{0};
    std::atomic<std::uint64_t> messages_received{0};
    std::atomic<std::uint64_t> bytes_sent{0};
    std::atomic<std::uint64_t> bytes_received{0};
    std::atomic<std::uint64_t> invokes_sent{0};
    std::atomic<std::uint64_t> invokes_executed{0};
    std::atomic<std::uint64_t> errors_received{0};
    std::atomic<std::uint64_t> heartbeats_sent{0};
    std::atomic<std::uint64_t> heartbeats_received{0};
    std::atomic<std::uint64_t> peers_lost{0};
};

// What carries frames between localities. send() returns false when
// the peer cannot be reached at the transport level (the caller turns
// that into peer_unreachable).
class transport
{
public:
    virtual ~transport() = default;
    virtual bool send(message const& m) = 0;
    virtual void close() = 0;
};

class locality
{
public:
    explicit locality(net_config config);
    ~locality();

    locality(locality const&) = delete;
    locality& operator=(locality const&) = delete;

    std::uint32_t id() const noexcept { return config_.id; }
    std::uint32_t num_localities() const noexcept
    {
        return config_.num_localities;
    }
    net_config const& config() const noexcept { return config_; }
    perf::counter_registry& registry() noexcept { return *registry_; }
    action_registry& actions() noexcept { return actions_; }
    net_stats const& stats() const noexcept { return stats_; }

    // ---- transport wiring ---------------------------------------------
    void attach_transport(transport* t);

    // Inbound frame entry point; thread-safe. Dispatches invokes,
    // completes pending requests, refreshes peer liveness.
    void deliver(message m);

    void peer_up(std::uint32_t peer);
    void peer_down(std::uint32_t peer, std::string const& reason);

    // ---- liveness ------------------------------------------------------
    bool peer_alive(std::uint32_t peer) const;
    // Self plus every live peer, ascending (the federation's view).
    std::vector<std::uint32_t> alive_localities() const;

    using topology_callback =
        std::function<void(std::uint32_t peer, bool alive)>;
    void on_topology_change(topology_callback cb);

    // ---- invocation ----------------------------------------------------
    // Untyped: send pre-marshalled arguments, get raw result bytes.
    // dest == id() loops back through the local action table.
    future<std::vector<std::uint8_t>> invoke(std::uint32_t dest,
        std::uint64_t action_id, std::vector<std::uint8_t> args);

    template <typename R, typename... Ts>
    future<R> async(std::uint32_t dest, std::string_view action, Ts&&... ts)
    {
        output_archive out;
        (save(out, std::forward<Ts>(ts)), ...);
        std::uint32_t const origin = dest;
        return invoke(dest, fnv1a64(action), out.take())
            .then([origin](future<std::vector<std::uint8_t>> bytes) -> R {
                std::vector<std::uint8_t> const payload = bytes.get();
                input_archive in(payload);
                if constexpr (std::is_void_v<R>)
                {
                    (void) in;
                    (void) origin;
                    return;
                }
                else
                {
                    return load<R>(in);
                }
            });
    }

    // ---- lifecycle -----------------------------------------------------
    // Start the heartbeat/timeout thread (no-op when interval is 0).
    void start_heartbeats();

    // Orderly shutdown: goodbye to live peers, fail pending requests,
    // stop heartbeats, close the transport. Idempotent.
    void stop();

    // Abrupt death for failure testing: close the transport with no
    // goodbye — peers find out via EOF or heartbeat misses.
    void kill();

    // The locality whose action handler is currently executing on this
    // thread (nullptr outside one). Lets handlers issue nested calls.
    static locality* current() noexcept;

private:
    struct pending_request
    {
        promise<std::vector<std::uint8_t>> result;
        std::uint32_t dest = 0;
        std::uint64_t deadline_ns = 0;    // 0 = no deadline
    };

    void execute_invoke(message m);
    bool send_frame(message const& m);
    void fail_pending_to(std::uint32_t peer, std::string const& reason);
    void heartbeat_loop();
    std::vector<std::uint32_t> live_peers_snapshot() const;

    // Handler tasks dispatched onto the runtime hold a token for the
    // duration of their body; stop()/kill() drain to zero after the
    // transport is closed, so a locality is never destroyed under a
    // still-running handler. (Consequence: don't call stop() from
    // inside a handler.)
    std::shared_ptr<void> inflight_token();
    void drain_inflight();

    net_config config_;
    perf::counter_registry* registry_;
    action_registry actions_;
    net_stats stats_;

    std::atomic<transport*> transport_{nullptr};
    std::atomic<bool> stopped_{false};

    mutable std::mutex peers_mutex_;
    struct peer_state
    {
        bool alive = false;
        std::uint64_t last_rx_ns = 0;
    };
    std::map<std::uint32_t, peer_state> peers_;
    topology_callback topology_cb_;

    std::mutex pending_mutex_;
    std::map<std::uint64_t, pending_request> pending_;
    std::atomic<std::uint64_t> next_request_id_{1};

    std::thread heartbeat_thread_;
    std::mutex heartbeat_mutex_;
    std::condition_variable heartbeat_cv_;
    bool heartbeat_stop_ = false;

    std::mutex inflight_mutex_;
    std::condition_variable inflight_cv_;
    std::uint64_t inflight_handlers_ = 0;
};

// Free-function spelling, mirroring minihpx::async.
template <typename R, typename... Ts>
future<R> async(
    locality& loc, std::uint32_t dest, std::string_view action, Ts&&... ts)
{
    return loc.template async<R>(dest, action, std::forward<Ts>(ts)...);
}

}    // namespace minihpx::net
