// Loopback TCP mesh: the real-socket transport behind net::locality.
//
// Topology is a full mesh over 127.0.0.1. Each locality binds one
// listening port; locality i actively connects to every peer j < i and
// accepts the connection from every peer j > i, so each pair shares
// exactly one duplex socket. The handshake is a hello/hello_ack
// exchange of locality ids (and, implicitly, wire versions — a
// mismatched peer is rejected by decode_header).
//
// Two-phase bring-up so tests can use ephemeral ports:
//
//   tcp_mesh mesh(loc);
//   std::uint16_t port = mesh.listen(0);     // 0 -> kernel-assigned
//   ... exchange ports out of band (argv, fork, vector in-process) ...
//   mesh.connect(ports_by_locality_id, timeout_ms);   // blocks: full mesh
//
// One reader thread per connection pushes inbound frames through
// locality::deliver(); writes are serialized per connection. EOF or a
// socket error reports peer_down to the owner — that is how abrupt
// peer death (kill -9, test kill()) is detected without heartbeats.
#pragma once

#include <minihpx/net/locality.hpp>
#include <minihpx/net/wire.hpp>

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace minihpx::net {

class tcp_mesh final : public transport
{
public:
    explicit tcp_mesh(locality& owner);
    ~tcp_mesh() override;

    tcp_mesh(tcp_mesh const&) = delete;
    tcp_mesh& operator=(tcp_mesh const&) = delete;

    // Bind + listen on 127.0.0.1:port (0 = ephemeral) and start the
    // accept thread. Returns the bound port. Throws std::runtime_error
    // on socket failure.
    std::uint16_t listen(std::uint16_t port);

    // Complete the mesh: dial every peer with a lower id (retrying
    // until it is up), then wait for every higher-id peer to dial us.
    // ports[i] is locality i's listening port. Throws on timeout.
    void connect(std::vector<std::uint16_t> const& ports,
        std::uint64_t timeout_ms = 10'000);

    // transport:
    bool send(message const& m) override;
    void close() override;

    std::size_t connection_count() const;

private:
    struct connection
    {
        int fd = -1;
        std::uint32_t peer = 0;
        std::mutex write_mutex;
        std::thread reader;
        std::atomic<bool> open{false};
    };

    void accept_loop();
    void reader_loop(connection* conn);
    void add_connection(int fd, std::uint32_t peer);
    void shutdown_fd(int fd);

    locality& owner_;
    std::atomic<bool> closing_{false};
    std::atomic<bool> closed_{false};

    int listen_fd_ = -1;
    std::uint16_t listen_port_ = 0;
    std::thread accept_thread_;

    mutable std::mutex connections_mutex_;
    std::map<std::uint32_t, std::unique_ptr<connection>> connections_;
};

}    // namespace minihpx::net
