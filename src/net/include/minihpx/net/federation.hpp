// Cross-locality counter federation.
//
// counter_federation plugs a net::locality into its counter registry's
// locality_provider seam (perf/registry.hpp), making remote counters
// indistinguishable from local ones:
//
//   - expand: `locality#*` wildcards fan out across alive localities;
//     instance wildcards on a remote locality ("locality#1/
//     worker-thread#*") are expanded by *that* locality's registry.
//   - create: a counter name homed on another locality resolves to a
//     transparent proxy whose get_value() is a remote evaluate call.
//   - topology: peers joining or dying bump the registry version, so
//     the telemetry sampler and active_counters::refresh re-expand
//     wildcards mid-session exactly as they do for late-registered
//     local types.
//
// The mechanism is three service actions riding the normal invoke
// machinery (no dedicated message types): expand, describe, evaluate.
// Every locality both serves them (against its own registry) and calls
// them (through the provider interface). Consumers — telemetry
// sampler, Prometheus scrape, --mh:print-counter, minihpx-lint-counters
// — need no changes; a federated name is just a name.
//
// Failure semantics: an unreachable peer yields status not_available
// from proxy evaluations and vanishes from wildcard expansion after
// the next topology bump; it is never an exception on the sampling
// path.
#pragma once

#include <minihpx/net/locality.hpp>
#include <minihpx/perf/counter_handle.hpp>
#include <minihpx/perf/registry.hpp>

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace minihpx::net {

// (time_ns, count, value, scaling, status) — counter_value on the wire.
using wire_counter_value =
    std::tuple<std::uint64_t, std::int64_t, double, double, std::uint8_t>;

// (full_name, kind, unit, helptext) — counter_info on the wire.
using wire_counter_info =
    std::tuple<std::string, std::uint8_t, std::string, std::string>;

// Service action names (every locality serves these).
inline constexpr char const* action_counter_expand =
    "minihpx/counters/expand";
inline constexpr char const* action_counter_describe =
    "minihpx/counters/describe";
inline constexpr char const* action_counter_evaluate =
    "minihpx/counters/evaluate";

class counter_federation final : public perf::locality_provider
{
public:
    // Installs the provider into loc's registry and registers the
    // service actions and /net{...} counters. The locality must
    // outlive both this object and any proxy counters it created.
    explicit counter_federation(locality& loc);
    ~counter_federation() override;

    counter_federation(counter_federation const&) = delete;
    counter_federation& operator=(counter_federation const&) = delete;

    // perf::locality_provider:
    std::vector<std::uint32_t> known_localities() const override;
    std::vector<perf::counter_path> expand_remote(
        perf::counter_path const& path) override;
    perf::counter_ptr create_remote(
        perf::counter_path const& path, std::string* error) override;

    locality& endpoint() noexcept { return loc_; }

private:
    void register_service_actions();
    void register_net_counters();
    void unregister_net_counters();

    // Server side: resolve-once cache for names peers keep evaluating.
    perf::counter_handle served_handle(
        std::string const& name, std::string* error);

    locality& loc_;
    perf::counter_registry& registry_;
    std::vector<std::string> net_types_;

    std::mutex served_mutex_;
    std::map<std::string, perf::counter_handle> served_;
};

// Block until `f` is ready, honoring the locality's deterministic pump
// (sim fabric) when one is configured. Shared by the federation and
// its proxy counters.
template <typename R>
R federation_wait(locality& loc, future<R> f)
{
    if (auto const& pump = loc.config().pump)
    {
        while (!f.is_ready())
        {
            if (!pump())
                throw peer_unreachable(loc.id(),
                    "sim fabric went idle while a federation reply was "
                    "outstanding");
        }
    }
    return f.get();
}

}    // namespace minihpx::net
