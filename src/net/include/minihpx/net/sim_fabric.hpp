// Simulated multi-locality fabric: N in-process localities joined by a
// virtual network priced with sim::net_model.
//
// Everything runs on the calling thread. send() enqueues the message
// with a delivery timestamp from the model; step()/run() pop events in
// (time, sequence) order and push them through locality::deliver with
// inline handlers — no OS threads, no sockets, no runtime. Two runs of
// the same program therefore produce byte-identical delivery logs
// (delivery_log()), which is what makes distributed what-if experiments
// ("would fib(30) scale past one node on a 10 GbE link?") trustworthy:
// a changed log digest means the experiment changed, not the weather.
//
// Each locality gets its own counter_registry (id i), so federation
// over the fabric exercises the same registry seams as real sockets.
#pragma once

#include <minihpx/net/locality.hpp>
#include <minihpx/perf/registry.hpp>
#include <minihpx/sim/net_model.hpp>

#include <cstdint>
#include <memory>
#include <queue>
#include <string>
#include <vector>

namespace minihpx::net {

class sim_fabric
{
public:
    explicit sim_fabric(
        std::uint32_t count, sim::net_model model = sim::net_model{});
    ~sim_fabric();

    sim_fabric(sim_fabric const&) = delete;
    sim_fabric& operator=(sim_fabric const&) = delete;

    std::uint32_t count() const noexcept
    {
        return static_cast<std::uint32_t>(localities_.size());
    }
    locality& at(std::uint32_t i) { return *localities_.at(i); }
    perf::counter_registry& registry_at(std::uint32_t i)
    {
        return *registries_.at(i);
    }

    // Deliver the next queued message; false when the fabric is idle.
    bool step();
    // Drain until idle. Returns the number of messages delivered.
    std::uint64_t run();

    std::uint64_t now_ns() const noexcept { return now_ns_; }
    std::uint64_t messages_delivered() const noexcept { return delivered_; }

    // Unplug a locality: its in-flight messages are dropped, future
    // sends to/from it fail, every survivor sees peer_down. Models
    // abrupt node death for failure-path tests.
    void partition(std::uint32_t id);

    // One line per delivered message, in delivery order — the
    // byte-determinism witness. Format:
    //   t=<ns> seq=<n> <src>-><dst> <type> req=<id> action=<id> bytes=<n>
    std::string const& delivery_log() const noexcept { return log_; }

private:
    struct port;

    bool post(message m);

    struct event
    {
        std::uint64_t time = 0;
        std::uint64_t seq = 0;
        message m;
    };
    struct event_after
    {
        bool operator()(event const& a, event const& b) const noexcept
        {
            if (a.time != b.time)
                return a.time > b.time;
            return a.seq > b.seq;
        }
    };

    sim::net_model model_;
    std::vector<std::unique_ptr<perf::counter_registry>> registries_;
    std::vector<std::unique_ptr<port>> ports_;
    std::vector<char> unplugged_;
    std::priority_queue<event, std::vector<event>, event_after> queue_;
    std::uint64_t now_ns_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t delivered_ = 0;
    std::string log_;
    // Last: destroyed first, so locality::stop still sees its port.
    std::vector<std::unique_ptr<locality>> localities_;
};

}    // namespace minihpx::net
