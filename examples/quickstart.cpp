// Quickstart: spawn tasks, synchronize with futures, read the
// runtime's intrinsic performance counters through resolve-once
// handles, and capture a per-task trace — the minimal end-to-end tour
// of the public API.
//
//   $ ./quickstart --mh:threads=4
//   $ ./minihpx-trace summary quickstart.mhtrace
#include <minihpx/minihpx.hpp>
#include <minihpx/perf/perf.hpp>
#include <minihpx/trace/trace.hpp>

#include <cstdio>
#include <vector>

using namespace minihpx;

namespace {

// A toy task-parallel computation: recursive pairwise sum.
long parallel_sum(std::vector<long> const& data, std::size_t lo,
    std::size_t hi)
{
    if (hi - lo < 1024)
    {
        long sum = 0;
        for (std::size_t i = lo; i < hi; ++i)
            sum += data[i];
        return sum;
    }
    std::size_t const mid = lo + (hi - lo) / 2;
    // Table II in one line: this is std::async with the namespace swapped.
    auto left = async([&data, lo, mid] { return parallel_sum(data, lo, mid); });
    long const right = parallel_sum(data, mid, hi);
    return left.get() + right;
}

}    // namespace

int main(int argc, char** argv)
{
    util::cli_args args(argc, argv);

    // 1. Start the runtime (N worker threads with work stealing).
    runtime rt(runtime_config::from_cli(args));
    std::printf("runtime started with %u worker(s)\n",
        rt.get_scheduler().num_workers());

    // 2. Register the intrinsic counters and resolve handles by name.
    // A handle front-loads parsing and lookup; evaluate() afterwards is
    // one virtual call — the shape periodic samplers use.
    perf::counter_registry registry;
    perf::register_all_runtime_counters(registry, rt);

    auto tasks =
        registry.resolve("/threads{locality#0/total}/count/cumulative");
    auto duration = registry.resolve("/threads{locality#0/total}/time/average");
    auto overhead =
        registry.resolve("/threads{locality#0/total}/time/average-overhead");

    // 3. Turn on per-task tracing: one line, one output file.
    trace::session tracing(registry,
        {.enabled = true, .destination = "quickstart.mhtrace"});

    // 4. Run a task-parallel computation.
    std::vector<long> data(1 << 20);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<long>(i % 7);
    long const sum = async([&] {
        this_task::annotate("parallel-sum");
        return parallel_sum(data, 0, data.size());
    }).get();
    std::printf("parallel sum  = %ld\n", sum);

    // 5. Query the counters (evaluate-and-reset, the paper's per-sample
    // protocol).
    std::printf("tasks executed       : %.0f\n", tasks.evaluate(true).get());
    std::printf("avg task duration    : %.2f us\n",
        duration.evaluate(true).get() / 1000.0);
    std::printf("avg task overhead    : %.2f us\n",
        overhead.evaluate(true).get() / 1000.0);

    // 6. Flush the trace; inspect with `minihpx-trace summary`.
    tracing.stop();
    std::printf("trace: %llu events (%llu dropped) -> quickstart.mhtrace\n",
        static_cast<unsigned long long>(tracing.events_recorded()),
        static_cast<unsigned long long>(tracing.events_dropped()));
    return 0;
}
