// Quickstart: spawn tasks, synchronize with futures, and read the
// runtime's intrinsic performance counters — the minimal end-to-end
// tour of the public API.
//
//   $ ./quickstart --mh:threads=4
#include <minihpx/minihpx.hpp>
#include <minihpx/perf/perf.hpp>

#include <cstdio>
#include <vector>

using namespace minihpx;

namespace {

// A toy task-parallel computation: recursive pairwise sum.
long parallel_sum(std::vector<long> const& data, std::size_t lo,
    std::size_t hi)
{
    if (hi - lo < 1024)
    {
        long sum = 0;
        for (std::size_t i = lo; i < hi; ++i)
            sum += data[i];
        return sum;
    }
    std::size_t const mid = lo + (hi - lo) / 2;
    // Table II in one line: this is std::async with the namespace swapped.
    auto left = async([&data, lo, mid] { return parallel_sum(data, lo, mid); });
    long const right = parallel_sum(data, mid, hi);
    return left.get() + right;
}

}    // namespace

int main(int argc, char** argv)
{
    util::cli_args args(argc, argv);

    // 1. Start the runtime (N worker threads with work stealing).
    runtime rt(runtime_config::from_cli(args));
    std::printf("runtime started with %u worker(s)\n",
        rt.get_scheduler().num_workers());

    // 2. Register the intrinsic counters and create a few by name.
    perf::counter_registry registry;
    perf::register_all_runtime_counters(registry, rt);

    auto tasks = registry.create("/threads{locality#0/total}/count/cumulative");
    auto duration = registry.create("/threads{locality#0/total}/time/average");
    auto overhead =
        registry.create("/threads{locality#0/total}/time/average-overhead");

    // 3. Run a task-parallel computation.
    std::vector<long> data(1 << 20);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<long>(i % 7);
    long const sum = async([&] {
        return parallel_sum(data, 0, data.size());
    }).get();
    std::printf("parallel sum  = %ld\n", sum);

    // 4. Query the counters (evaluate-and-reset, the paper's per-sample
    // protocol).
    std::printf("tasks executed       : %.0f\n",
        tasks->get_value(true).get());
    std::printf("avg task duration    : %.2f us\n",
        duration->get_value(true).get() / 1000.0);
    std::printf("avg task overhead    : %.2f us\n",
        overhead->get_value(true).get() / 1000.0);
    return 0;
}
