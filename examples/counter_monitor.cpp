// Periodic counter monitoring driven entirely by the command line —
// the convenience layer described in paper §IV:
//
//   $ ./counter_monitor \
//       --mh:threads=4 \
//       --mh:print-counter=/threads{locality#0/total}/count/cumulative \
//       --mh:print-counter=/threads{locality#0/worker-thread#*}/count/cumulative \
//       --mh:print-counter=/threads{locality#0/total}/idle-rate \
//       --mh:print-counter-interval=100 \
//       --mh:print-counter-format=csv \
//       --mh:print-counter-destination=counters.csv
//
//   $ ./counter_monitor --mh:list-counters
//
// While the session samples in the background, the example runs a
// steady stream of tasks of mixed granularity.
#include <minihpx/minihpx.hpp>
#include <minihpx/papi/papi_engine.hpp>
#include <minihpx/perf/perf.hpp>

#include <chrono>
#include <cstdio>
#include <iostream>
#include <thread>
#include <vector>

using namespace minihpx;

int main(int argc, char** argv)
{
    util::cli_args args(argc, argv);
    runtime rt(runtime_config::from_cli(args));

    perf::counter_registry registry;
    perf::register_all_runtime_counters(registry, rt);
    papi::papi_engine papi_engine(rt.get_scheduler().num_workers());
    papi_engine.register_counters(registry);
    papi_engine.install();

    auto options = perf::session_options::from_cli(args);
    if (options.list_counters)
    {
        perf::counter_session::list_counter_types(registry, std::cout);
        return 0;
    }
    if (options.counter_names.empty())
    {
        // Sensible default set when none requested.
        options.counter_names = {
            "/threads{locality#0/total}/count/cumulative",
            "/threads{locality#0/total}/time/average",
            "/threads{locality#0/total}/idle-rate",
            "/papi{locality#0/total}/OFFCORE_REQUESTS:ALL_DATA_RD",
        };
        if (options.interval_ms == 0.0)
            options.interval_ms = 100.0;
    }
    perf::counter_session session(registry, std::move(options));

    // Generate work for ~1 second: bursts of fine tasks with annotated
    // memory traffic, so both software and papi counters move.
    auto const deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(1);
    std::vector<double> buffer(1 << 16, 1.0);
    while (std::chrono::steady_clock::now() < deadline)
    {
        std::vector<future<double>> burst;
        for (int i = 0; i < 64; ++i)
        {
            burst.push_back(async([&buffer] {
                double sum = 0;
                for (double x : buffer)
                    sum += x;
                annotate_work({.cpu_ns = 20000,
                    .data_rd_bytes = buffer.size() * sizeof(double)});
                return sum;
            }));
        }
        for (auto& f : burst)
            f.get();
    }

    std::printf("done; the session prints a final evaluation on exit.\n");
    return 0;
}
