// Live counter monitoring on the telemetry pipeline (paper §IV's
// convenience layer, rebuilt on minihpx::telemetry):
//
//   $ ./counter_monitor \
//       --mh:threads=4 \
//       --mh:print-counter=/threads{locality#0/total}/count/cumulative \
//       "--mh:print-counter=/threads{locality#0/worker-thread#*}/count/cumulative" \
//       --mh:telemetry-interval=100 \
//       --mh:telemetry-destination=csv:counters.csv \
//       --mh:telemetry-endpoint=9464 \
//       --mh:telemetry-rollup=/threads{locality#0/total}/time/average
//
//   $ curl http://127.0.0.1:9464/metrics        # while it runs
//   $ ./counter_monitor --mh:list-counters
//
// The sampler streams the selected counters into the CSV/JSONL sink
// and (when --mh:telemetry-endpoint is given) serves the latest sample
// in Prometheus text-exposition format. --mh:monitor-duration-ms sets
// how long the example generates work (default 1000).
#include <minihpx/minihpx.hpp>
#include <minihpx/papi/papi_engine.hpp>
#include <minihpx/perf/perf.hpp>
#include <minihpx/telemetry/telemetry.hpp>

#include <chrono>
#include <cstdio>
#include <iostream>
#include <utility>
#include <vector>

using namespace minihpx;

int main(int argc, char** argv)
{
    util::cli_args args(argc, argv);
    runtime rt(runtime_config::from_cli(args));

    perf::counter_registry registry;
    perf::register_all_runtime_counters(registry, rt);
    papi::papi_engine papi_engine(rt.get_scheduler().num_workers());
    // --mh:late-papi: hold the PAPI registration back until the session
    // is already sampling, demonstrating live rediscovery — the sampler
    // notices the registry version bump and the /papi columns join the
    // running stream (second CSV header / schema line mid-run).
    bool const late_papi = args.flag("mh:late-papi");
    if (!late_papi)
        papi_engine.register_counters(registry);
    papi_engine.install();

    if (args.flag("mh:list-counters"))
    {
        perf::counter_session::list_counter_types(registry, std::cout);
        return 0;
    }

    auto options = telemetry::telemetry_options::from_cli(args);
    if (options.counter_names.empty())
    {
        // Sensible default set when none requested.
        options.counter_names = {
            "/threads{locality#0/total}/count/cumulative",
            "/threads{locality#0/total}/time/average",
            "/threads{locality#0/total}/idle-rate",
            "/papi{locality#0/total}/OFFCORE_REQUESTS:ALL_DATA_RD",
        };
    }
    if (options.destination.empty() && options.endpoint_port < 0)
        options.destination = "csv:/dev/stdout";

    telemetry::session session(registry, std::move(options));
    if (auto* endpoint = session.endpoint())
        std::printf("telemetry endpoint: http://127.0.0.1:%u/metrics\n",
            static_cast<unsigned>(endpoint->port()));

    if (late_papi)
        papi_engine.register_counters(registry);

    // Resolve-once handles for the final summary: no string lookups
    // after this point (the sampler holds its own handles internally).
    perf::counter_handle executed =
        registry.resolve("/threads{locality#0/total}/count/cumulative");
    perf::counter_handle stolen =
        registry.resolve("/threads{locality#0/total}/count/stolen");

    // Generate work: bursts of fine tasks with annotated memory
    // traffic, so both software and papi counters move.
    auto const duration =
        std::chrono::milliseconds(args.int_or("mh:monitor-duration-ms", 1000));
    auto const deadline = std::chrono::steady_clock::now() + duration;
    std::vector<double> buffer(1 << 16, 1.0);
    while (std::chrono::steady_clock::now() < deadline)
    {
        std::vector<future<double>> burst;
        for (int i = 0; i < 64; ++i)
        {
            burst.push_back(async([&buffer] {
                double sum = 0;
                for (double x : buffer)
                    sum += x;
                annotate_work({.cpu_ns = 20000,
                    .data_rd_bytes = buffer.size() * sizeof(double)});
                return sum;
            }));
        }
        for (auto& f : burst)
            f.get();
    }

    session.stop();
    auto const& s = session.get_sampler();
    std::printf("done: %llu samples, %llu flushed, %llu dropped.\n",
        static_cast<unsigned long long>(s.samples()),
        static_cast<unsigned long long>(s.flushed()),
        static_cast<unsigned long long>(s.dropped()));
    if (executed && stolen)
        std::printf("tasks executed: %.0f (stolen: %.0f)\n",
            executed.evaluate().get(), stolen.evaluate().get());
    return 0;
}
