// The ported Inncabs suite runner: any benchmark, any engine, with the
// paper's sampling protocol and counter options.
//
//   $ ./inncabs_driver fib --engine=minihpx --mh:threads=4 --samples=5 \
//       --mh:print-counter=/threads{locality#0/total}/time/average
//   $ ./inncabs_driver sort --engine=std --scale=default
//   $ ./inncabs_driver uts --engine=sim-hpx --sim-cores=20 --scale=paper
//   $ ./inncabs_driver --list
#include <inncabs/harness.hpp>
#include <inncabs/inncabs.hpp>
#include <minihpx/papi/papi_engine.hpp>
#include <minihpx/perf/perf.hpp>
#include <minihpx/telemetry/telemetry.hpp>
#include <minihpx/trace/trace.hpp>

#include <cstdio>
#include <memory>
#include <string>
#include <utility>

using namespace minihpx;

namespace {

inncabs::input_scale parse_scale(util::cli_args const& args)
{
    auto const s = args.value_or("scale", "default");
    if (s == "tiny")
        return inncabs::input_scale::tiny;
    if (s == "paper")
        return inncabs::input_scale::paper;
    return inncabs::input_scale::bench_default;
}

bool telemetry_requested(telemetry::telemetry_options const& options)
{
    return !options.destination.empty() || options.endpoint_port >= 0;
}

}    // namespace

int main(int argc, char** argv)
{
    util::cli_args args(argc, argv);

    if (args.flag("list") || args.positionals().empty())
    {
        std::printf("benchmarks:");
        for (auto const& entry : inncabs::suite())
            std::printf(" %s", entry.name.c_str());
        std::printf("\nengines: minihpx std serial sim-hpx sim-std\n"
                    "options: --engine=E --scale=tiny|default|paper "
                    "--samples=N --sim-cores=N --tile=N --mh:threads=N "
                    "--mh:print-counter=NAME ...\n");
        return args.flag("list") ? 0 : 1;
    }

    auto const* entry = inncabs::find_benchmark(args.positionals().front());
    if (!entry)
    {
        std::fprintf(stderr, "unknown benchmark '%s' (try --list)\n",
            args.positionals().front().c_str());
        return 1;
    }

    auto const scale = parse_scale(args);
    auto const engine = args.value_or("engine", "minihpx");
    auto const samples = static_cast<unsigned>(args.int_or("samples", 5));

    // --tile=N retiles the matmul workload (0 = untiled row bands);
    // other benchmarks ignore it.
    if (auto const tile = args.int_or("tile", -1); tile >= 0)
        inncabs::matmul_tile_override() = static_cast<std::size_t>(tile);

    double result = 0.0;
    inncabs::sample_result timing;

    if (engine == "sim-hpx" || engine == "sim-std")
    {
        sim::sim_config config;
        config.model = engine == "sim-hpx" ? sim::sched_model::hpx_like :
                                             sim::sched_model::std_like;
        config.cores = static_cast<unsigned>(args.int_or("sim-cores", 20));
        sim::simulator simulator(config);

        // --mh:telemetry-destination streams the simulator's progress
        // counters on the *virtual* clock into the same record schema
        // real runs produce (docs/TELEMETRY.md).
        perf::counter_registry registry;
        std::unique_ptr<telemetry::sim_sampler> sim_telemetry;
        auto options = telemetry::telemetry_options::from_cli(args);
        if (!options.destination.empty())
        {
            telemetry::register_sim_counters(registry, simulator);
            telemetry::sampler_config sc;
            sc.counter_names = options.counter_names;
            if (sc.counter_names.empty())
                sc.counter_names = {
                    "/sim{locality#0/total}/count/tasks-executed",
                    "/sim{locality#0/total}/count/tasks-alive",
                    "/sim{locality#0/total}/time/task-cumulative",
                    "/sim{locality#0/total}/time/overhead-cumulative",
                };
            sc.period_ns = static_cast<std::uint64_t>(
                options.interval_ms * 1e6);    // virtual ms
            sim_telemetry = std::make_unique<telemetry::sim_sampler>(
                simulator, registry, std::move(sc));
            if (options.destination.rfind("jsonl:", 0) == 0)
                sim_telemetry->add_sink(std::make_shared<
                    telemetry::jsonl_sink>(options.destination.substr(6)));
            else if (options.destination.rfind("csv:", 0) == 0)
                sim_telemetry->add_sink(std::make_shared<
                    telemetry::csv_sink>(options.destination.substr(4)));
            else
                sim_telemetry->add_sink(std::make_shared<
                    telemetry::csv_sink>(options.destination));
        }

        // --mh:trace records the simulated schedule itself: virtual
        // timestamps, byte-deterministic across runs (docs/TRACING.md).
        auto trace_options = trace::trace_options::from_cli(args);
        std::unique_ptr<trace::sim_session> sim_trace;
        if (trace_options.enabled)
            sim_trace = std::make_unique<trace::sim_session>(
                simulator, trace_options);

        auto const report =
            simulator.run([&] { result = entry->run_sim_body(scale); });
        if (sim_telemetry)
            sim_telemetry->finish();
        if (sim_trace)
        {
            sim_trace->finish();
            std::printf("trace written to %s\n",
                trace_options.destination.c_str());
        }
        std::printf("%s on %s (%u simulated cores, scale=%s)\n",
            entry->name.c_str(), engine.c_str(), config.cores,
            args.value_or("scale", "default").c_str());
        if (report.failed)
        {
            std::printf("  FAILED: %s\n", report.failure_reason.c_str());
            return 2;
        }
        std::printf("  virtual exec time : %.3f ms\n",
            report.exec_time_s * 1e3);
        std::printf("  tasks executed    : %llu\n",
            static_cast<unsigned long long>(report.tasks_executed));
        std::printf("  avg task duration : %.2f us\n",
            report.avg_task_duration_us());
        std::printf("  avg task overhead : %.2f us\n",
            report.avg_task_overhead_us());
        std::printf("  offcore bandwidth : %.2f GB/s\n",
            report.offcore_bandwidth_gbs());
        return 0;
    }

    if (engine == "serial")
    {
        timing = inncabs::run_samples(entry->name, samples,
            [&] { result = entry->run_serial(scale); });
    }
    else if (engine == "std")
    {
        timing = inncabs::run_samples(
            entry->name, samples, [&] { result = entry->run_std(scale); });
    }
    else if (engine == "minihpx")
    {
        runtime rt(runtime_config::from_cli(args));
        perf::counter_registry registry;
        perf::register_all_runtime_counters(registry, rt);
        papi::papi_engine papi_engine(rt.get_scheduler().num_workers());
        papi_engine.register_counters(registry);
        papi_engine.install();

        // --mh:telemetry-destination / --mh:telemetry-endpoint stream
        // the selected counters through the telemetry pipeline while
        // the benchmark runs (scrape with `curl .../metrics`); plain
        // --mh:print-counter keeps the classic periodic-print session.
        std::unique_ptr<telemetry::session> telemetry_session;
        auto telemetry_options = telemetry::telemetry_options::from_cli(args);
        if (telemetry_requested(telemetry_options))
        {
            telemetry_session = std::make_unique<telemetry::session>(
                registry, std::move(telemetry_options));
            if (auto* endpoint = telemetry_session->endpoint())
            {
                std::printf("telemetry endpoint: http://127.0.0.1:%u"
                            "/metrics\n",
                    static_cast<unsigned>(endpoint->port()));
                std::fflush(stdout);
            }
        }
        std::unique_ptr<perf::counter_session> session;
        if (!telemetry_session)
            session = std::make_unique<perf::counter_session>(
                registry, perf::session_options::from_cli(args));

        // --mh:trace records per-task events (spawn/steal/begin/end/...)
        // for offline analysis with `minihpx-trace` (docs/TRACING.md).
        auto trace_options = trace::trace_options::from_cli(args);
        std::unique_ptr<trace::session> trace_session;
        if (trace_options.enabled)
            trace_session = std::make_unique<trace::session>(
                registry, trace_options);

        timing = inncabs::run_samples(entry->name, samples,
            [&] { result = entry->run_minihpx(scale); });
        if (telemetry_session)
            telemetry_session->stop();
        if (trace_session)
        {
            trace_session->stop();
            std::printf("trace written to %s (%llu events, %llu dropped)\n",
                trace_options.destination.c_str(),
                static_cast<unsigned long long>(
                    trace_session->events_recorded()),
                static_cast<unsigned long long>(
                    trace_session->events_dropped()));
        }
    }
    else
    {
        std::fprintf(stderr, "unknown engine '%s'\n", engine.c_str());
        return 1;
    }

    std::printf("%s on %s: median %.2f ms over %u samples "
                "(min %.2f, max %.2f), result checksum %.6g\n",
        entry->name.c_str(), engine.c_str(), timing.median_ms(), samples,
        timing.times_ms.min(), timing.times_ms.max(), result);
    return 0;
}
