// Runtime adaptivity from intrinsic counters — the "path towards
// runtime adaptivity" the paper's conclusion sketches (and APEX
// implements): a policy loop reads the idle-rate counter while the
// application runs and throttles its own concurrency (tasks in flight)
// to keep the workers busy without oversubscribing.
//
//   $ ./adaptive_throttle --mh:threads=4
#include <minihpx/minihpx.hpp>
#include <minihpx/perf/perf.hpp>

#include <atomic>
#include <cstdio>
#include <vector>

using namespace minihpx;

namespace {

// Simulated pipeline stage with a fixed cost.
void work_item()
{
    volatile double x = 1.0;
    for (int i = 0; i < 40000; ++i)
        x = x * 1.0000001 + 0.5;
}

}    // namespace

int main(int argc, char** argv)
{
    util::cli_args args(argc, argv);
    runtime rt(runtime_config::from_cli(args));
    unsigned const workers = rt.get_scheduler().num_workers();

    perf::counter_registry registry;
    perf::register_all_runtime_counters(registry, rt);
    // Resolve once, evaluate every policy round: counter_handle keeps
    // the string parse/lookup out of the control loop.
    perf::counter_handle idle_rate =
        registry.resolve("/threads{locality#0/total}/idle-rate");
    perf::counter_handle queue_len =
        registry.resolve("/threadqueue{locality#0/total}/length");

    // Policy: keep idle-rate between 5% and 25% (counter reports in
    // 0.01% units) by adjusting the number of tasks in flight.
    std::size_t window = workers;            // tasks in flight
    std::size_t const min_window = 1;
    std::size_t const max_window = workers * 64;
    constexpr int rounds = 40;
    constexpr int items_per_round = 128;

    std::printf("%8s %12s %12s %10s\n", "round", "idle[%]", "queue", "window");
    for (int round = 0; round < rounds; ++round)
    {
        idle_rate.reset();
        int launched = 0;
        std::vector<future<void>> inflight;
        while (launched < items_per_round)
        {
            while (inflight.size() < window && launched < items_per_round)
            {
                inflight.push_back(async([] { work_item(); }));
                ++launched;
            }
            // Retire the oldest to make room.
            inflight.front().get();
            inflight.erase(inflight.begin());
        }
        wait_all(inflight);

        auto const idle = idle_rate.evaluate(true);
        double const idle_pct = idle.valid() ? idle.get() / 100.0 : 0.0;
        double const queued = queue_len.evaluate().get();

        // The adaptation step.
        if (idle_pct > 25.0 && window < max_window)
            window *= 2;    // workers starving: release more tasks
        else if (idle_pct < 5.0 && window > min_window)
            window = window / 2 + window % 2;    // saturated: back off

        if (round % 5 == 0 || round == rounds - 1)
            std::printf("%8d %12.1f %12.0f %10zu\n", round, idle_pct,
                queued, window);
    }

    std::printf("\nfinal window: %zu tasks in flight for %u workers\n",
        window, workers);
    return 0;
}
