# Sanitizer presets for minihpx.
#
#   cmake -B build-tsan -S . -DMINIHPX_SANITIZE=thread
#   cmake -B build-asan -S . -DMINIHPX_SANITIZE=address
#   cmake -B build-ubsan -S . -DMINIHPX_SANITIZE=undefined
#   cmake -B build-aubsan -S . -DMINIHPX_SANITIZE=address,undefined
#
# Every target opts in by calling minihpx_target_sanitizers(<target>)
# from its own CMakeLists.txt; the whole tree must be built with one
# consistent setting (mixing instrumented and uninstrumented TUs of the
# same library is undefined).
#
# thread/address force the annotated ucontext context-switch
# implementation (MINIHPX_FORCE_UCONTEXT): the raw x86-64 assembly
# switch only carries a stack pointer, so it cannot announce stack
# bounds to the sanitizer fiber hooks. `undefined` keeps the fast asm
# path — UBSan instruments compiler-generated code only and is
# unaffected by stack switching.
#
# Suppression files live in suppressions/ (one per sanitizer, every
# entry must carry a justification comment) and are exported through
# MINIHPX_SANITIZER_TEST_ENV for tests/CMakeLists.txt to attach to each
# test's environment.

set(MINIHPX_SANITIZE "" CACHE STRING
    "Sanitizer preset: empty, thread, address, undefined, or a comma list (address,undefined)")
set_property(CACHE MINIHPX_SANITIZE PROPERTY STRINGS
    "" "thread" "address" "undefined" "address,undefined")

set(MINIHPX_SANITIZE_COMPILE_OPTIONS "")
set(MINIHPX_SANITIZE_LINK_OPTIONS "")
set(MINIHPX_SANITIZE_DEFINITIONS "")
set(MINIHPX_SANITIZER_TEST_ENV "")

if(MINIHPX_SANITIZE)
  string(REPLACE "," ";" _minihpx_san_list "${MINIHPX_SANITIZE}")
  set(_minihpx_supp_dir "${CMAKE_SOURCE_DIR}/suppressions")

  foreach(_san IN LISTS _minihpx_san_list)
    if(_san STREQUAL "thread")
      list(APPEND MINIHPX_SANITIZE_COMPILE_OPTIONS -fsanitize=thread)
      list(APPEND MINIHPX_SANITIZE_LINK_OPTIONS -fsanitize=thread)
      list(APPEND MINIHPX_SANITIZE_DEFINITIONS MINIHPX_FORCE_UCONTEXT)
      # halt_on_error: any unsuppressed race fails the test, not just
      # the log. second_deadlock_stack: both stacks on lock reports.
      list(APPEND MINIHPX_SANITIZER_TEST_ENV
        "TSAN_OPTIONS=suppressions=${_minihpx_supp_dir}/tsan.supp:halt_on_error=1:second_deadlock_stack=1")
    elseif(_san STREQUAL "address")
      list(APPEND MINIHPX_SANITIZE_COMPILE_OPTIONS -fsanitize=address)
      list(APPEND MINIHPX_SANITIZE_LINK_OPTIONS -fsanitize=address)
      list(APPEND MINIHPX_SANITIZE_DEFINITIONS MINIHPX_FORCE_UCONTEXT)
      list(APPEND MINIHPX_SANITIZER_TEST_ENV
        "ASAN_OPTIONS=suppressions=${_minihpx_supp_dir}/asan.supp:detect_stack_use_after_return=0"
        "LSAN_OPTIONS=suppressions=${_minihpx_supp_dir}/lsan.supp")
    elseif(_san STREQUAL "undefined")
      list(APPEND MINIHPX_SANITIZE_COMPILE_OPTIONS
        -fsanitize=undefined -fno-sanitize-recover=undefined)
      list(APPEND MINIHPX_SANITIZE_LINK_OPTIONS -fsanitize=undefined)
      list(APPEND MINIHPX_SANITIZER_TEST_ENV
        "UBSAN_OPTIONS=suppressions=${_minihpx_supp_dir}/ubsan.supp:print_stacktrace=1")
    else()
      message(FATAL_ERROR
        "MINIHPX_SANITIZE: unknown sanitizer '${_san}' "
        "(expected thread, address or undefined)")
    endif()
  endforeach()

  if("thread" IN_LIST _minihpx_san_list AND
     "address" IN_LIST _minihpx_san_list)
    message(FATAL_ERROR "TSan and ASan cannot be combined in one build")
  endif()

  # Usable stacks in reports, and keep the debug assertions that the
  # sanitizers' findings usually point at.
  list(APPEND MINIHPX_SANITIZE_COMPILE_OPTIONS -fno-omit-frame-pointer -g)
  list(REMOVE_DUPLICATES MINIHPX_SANITIZE_DEFINITIONS)
endif()

function(minihpx_target_sanitizers target)
  if(MINIHPX_SANITIZE_COMPILE_OPTIONS)
    target_compile_options(${target} PRIVATE
      ${MINIHPX_SANITIZE_COMPILE_OPTIONS})
    target_link_options(${target} PRIVATE ${MINIHPX_SANITIZE_LINK_OPTIONS})
  endif()
  if(MINIHPX_SANITIZE_DEFINITIONS)
    # PUBLIC: MINIHPX_FORCE_UCONTEXT changes header-defined types
    # (execution_context), so every consumer must see it too.
    target_compile_definitions(${target} PUBLIC
      ${MINIHPX_SANITIZE_DEFINITIONS})
  endif()
endfunction()
