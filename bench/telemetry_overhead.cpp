// Telemetry pipeline overhead on the real runtime (ISSUE acceptance:
// streaming counters through the sampler must cost <=10% wall clock on
// fine-grained workloads, even at a 1 ms sampling period).
//
// Two very fine-grained Inncabs workloads (fib, fft) run three ways —
// telemetry off, CSV sink @ 1 ms, JSONL sink @ 1 ms — with the sampler
// streaming the full software counter set. The sample path is
// allocation-free and the sinks run on the flush thread, so the
// overhead should sit well under the paper's 10% bound for in-band
// counter collection.
#include <inncabs/fft.hpp>
#include <inncabs/fib.hpp>
#include <inncabs/harness.hpp>
#include <minihpx/minihpx.hpp>
#include <minihpx/perf/perf.hpp>
#include <minihpx/telemetry/telemetry.hpp>

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

using namespace minihpx;

namespace {

std::vector<std::string> const counter_set = {
    "/threads{locality#0/total}/count/cumulative",
    "/threads{locality#0/total}/time/average",
    "/threads{locality#0/total}/time/average-overhead",
    "/threads{locality#0/total}/time/cumulative",
    "/threads{locality#0/total}/time/cumulative-overhead",
    "/threads{locality#0/total}/idle-rate",
};

double median_ms(char const* name, unsigned samples,
    std::function<void()> const& body)
{
    return inncabs::run_samples(name, samples, body).median_ms();
}

double with_sink(perf::counter_registry& registry, char const* dest,
    char const* name, unsigned samples, std::function<void()> const& body)
{
    telemetry::telemetry_options options;
    options.counter_names = counter_set;
    options.interval_ms = 1.0;
    options.destination = dest;
    telemetry::session session(registry, std::move(options));
    double const ms = median_ms(name, samples, body);
    session.stop();
    return ms;
}

void report(char const* label, double base_ms, double ms)
{
    double const pct = (ms - base_ms) / base_ms * 100.0;
    std::printf("  %-28s %10.2f ms  (%+.1f%%)%s\n", label, ms, pct,
        pct > 10.0 ? "  ** exceeds 10% budget **" : "");
}

}    // namespace

int main(int argc, char** argv)
{
    util::cli_args args(argc, argv);
    unsigned const workers =
        static_cast<unsigned>(args.int_or("workers", 2));
    unsigned const samples =
        static_cast<unsigned>(args.int_or("samples", 7));
    int const fib_n = static_cast<int>(args.int_or("n", 21));
    auto const fft_n =
        static_cast<std::size_t>(args.int_or("fft-n", 1 << 12));

    std::printf("== telemetry streaming overhead (1 ms sampling, "
                "%u workers, %u samples) ==\n\n",
        workers, samples);

    runtime_config config;
    config.sched.num_workers = workers;
    runtime rt(config);

    perf::counter_registry registry;
    perf::register_all_runtime_counters(registry, rt);

    struct workload
    {
        char const* name;
        std::function<void()> body;
    };
    std::vector<workload> const workloads = {
        {"fib", [&] {
             (void) inncabs::fib_bench<inncabs::minihpx_engine>::run(
                 {.n = fib_n, .body_ns = 0});
         }},
        {"fft", [&] {
             // Batch: one fft transform is sub-millisecond at the
             // default size — too short for a stable median.
             for (int i = 0; i < 8; ++i)
                 (void) inncabs::fft_bench<inncabs::minihpx_engine>::run(
                     {.n = fft_n});
         }},
    };

    for (auto const& w : workloads)
    {
        w.body();    // warm-up: stack pool, lazy init, page faults
        double const base_ms = median_ms(w.name, samples, w.body);
        double const csv_ms = with_sink(
            registry, "csv:/dev/null", w.name, samples, w.body);
        double const jsonl_ms = with_sink(
            registry, "jsonl:/dev/null", w.name, samples, w.body);

        std::printf("%s:\n", w.name);
        std::printf("  %-28s %10.2f ms\n", "no telemetry", base_ms);
        report("csv sink @ 1ms", base_ms, csv_ms);
        report("jsonl sink @ 1ms", base_ms, jsonl_ms);
        std::printf("\n");
    }

    std::printf("budget: <=10%% overhead per sink at 1 ms sampling.\n");
    return 0;
}
