// Table I reproduction: Inncabs at full concurrency (20 cores) on the
// thread-per-task std::async model, untooled vs. TAU-like vs.
// HPCToolkit-like instrumentation.
//
// Paper shape: small-task-count benchmarks (alignment, round, sparselu,
// pyramids) complete under the tools with 10^3-10^4 % overhead; large
// task counts crash the tools (SegV/Abort); benchmarks whose *untooled*
// std version already exhausts pthreads (fib, uts, nqueens) abort
// regardless.
#include "common.hpp"

#include <minihpx/tools/tool_model.hpp>

int main(int argc, char** argv)
{
    minihpx::util::cli_args args(argc, argv);
    auto const scale = bench::scale_from_cli(args);

    bench::print_platform_header(
        "Table I: Inncabs under external tools (std::async, 20 cores)");
    std::printf("input scale: %s\n\n", bench::scale_name(scale));

    std::printf("%-10s | %12s %12s | %12s %12s | %12s %12s\n", "benchmark",
        "base[ms]", "tasks", "TAU[ms]", "TAU ovh%", "HPCT[ms]",
        "HPCT ovh%");
    std::printf("%.*s\n", 104,
        "---------------------------------------------------------------"
        "---------------------------------------------");

    minihpx::tools::tool_config tool_config;
    for (auto const& entry : inncabs::suite())
    {
        auto const baseline = bench::run_sim(
            entry, bench::sched_model::std_like, 20, scale);
        auto const tau = minihpx::tools::apply_tool(
            minihpx::tools::tool_kind::tau_like, tool_config, baseline);
        auto const hpct = minihpx::tools::apply_tool(
            minihpx::tools::tool_kind::hpctoolkit_like, tool_config,
            baseline);

        char tasks[32];
        if (baseline.failed)
            std::snprintf(tasks, sizeof(tasks), "n/a");
        else
            std::snprintf(tasks, sizeof(tasks), "%llu",
                static_cast<unsigned long long>(baseline.tasks_created));

        auto pct = [](minihpx::tools::tool_outcome const& o) {
            char buf[32];
            if (o.result == minihpx::tools::tool_outcome::status::completed)
                std::snprintf(buf, sizeof(buf), "%.0f%%", o.overhead_pct);
            else
                std::snprintf(buf, sizeof(buf), "n/a");
            return std::string(buf);
        };

        std::printf("%-10s | %12s %12s | %12s %12s | %12s %12s\n",
            entry.name.c_str(),
            baseline.failed ? "Abort" : bench::time_cell(baseline).c_str(),
            tasks, tau.cell().c_str(), pct(tau).c_str(),
            hpct.cell().c_str(), pct(hpct).c_str());
    }

    std::printf(
        "\nshape targets (paper): tools crash (SegV/Abort) or add\n"
        "10^3-10^4%% overhead; already-failing std baselines stay Abort.\n");
    return 0;
}
