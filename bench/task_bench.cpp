// Task Bench METG sweep: minimum effective task granularity per
// engine, graph type, and worker count.
//
// Methodology follows the Task Bench paper (PAPERS.md): for a fixed
// dependency graph (width x steps), shrink the per-task granularity
// until efficiency — ideal time over measured time, where ideal =
// points x task_ns / workers — drops below 50 %. METG(50) is the
// smallest granularity still at or above that bar; it prices the
// runtime's per-task overhead in units an application writer can use
// ("tasks shorter than this waste more than half the machine").
//
// Engines: `minihpx` and `std` are wall-clock measured; `sim` runs the
// identical source on the virtual-time simulator, so its METG reflects
// the modeled scheduler costs only and is byte-deterministic.
//
//   $ ./task_bench [--mh:taskbench-graphs=stencil,fft]
//                  [--mh:taskbench-engines=minihpx,std,sim]
//                  [--mh:taskbench-workers=1,2] [--mh:taskbench-width=W]
//                  [--mh:taskbench-steps=S] [--mh:taskbench-payload=N]
//                  [--mh:taskbench-start-ns=N] [--mh:taskbench-min-ns=N]
//                  [--mh:taskbench-json=BENCH_taskbench.json] [--help]
//
// Summary lines are grep-stable:  "METG engine=... graph=... workers=N
// metg_ns=... " — CI greps them after the smoke sweep.
#include "common.hpp"

#include <minihpx/minihpx.hpp>
#include <minihpx/taskbench/taskbench.hpp>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

namespace tb = minihpx::taskbench;

namespace {

// ------------------------------------------------ table-driven flags
// One row per --mh:taskbench-* option: the single place where a flag's
// name, default, and help line live (same registration style as
// runtime_config::from_cli).
struct flag_row
{
    char const* name;
    char const* dflt;
    char const* help;
};

constexpr flag_row flag_table[] = {
    {"mh:taskbench-graphs", "trivial,stencil,fft,tree,random",
        "comma list of dependency graphs to sweep"},
    {"mh:taskbench-engines", "minihpx,std,sim",
        "comma list of engines to measure"},
    {"mh:taskbench-workers", "1,2", "comma list of worker counts"},
    {"mh:taskbench-width", "16", "graph width (parallel tasks per step)"},
    {"mh:taskbench-steps", "16", "graph steps (timesteps)"},
    {"mh:taskbench-payload", "2", "payload words per point"},
    {"mh:taskbench-start-ns", "262144",
        "largest task granularity in the sweep [ns]"},
    {"mh:taskbench-min-ns", "256",
        "smallest granularity tried before giving up [ns]"},
    {"mh:taskbench-json", "BENCH_taskbench.json",
        "result file (empty to disable)"},
};

void print_flag_table()
{
    std::printf("task_bench options:\n");
    for (auto const& row : flag_table)
        std::printf("  --%-26s %s (default: %s)\n", row.name, row.help,
            row.dflt);
}

std::string flag_or_default(
    minihpx::util::cli_args const& args, char const* name)
{
    for (auto const& row : flag_table)
        if (std::string_view(row.name) == name)
            return args.value_or(name, row.dflt);
    return {};
}

std::vector<std::string> split_list(std::string const& csv)
{
    std::vector<std::string> out;
    for (auto part : minihpx::util::split(csv, ','))
        if (!part.empty())
            out.emplace_back(part);
    return out;
}

// ------------------------------------------------------ measurements
struct sample
{
    std::uint64_t task_ns = 0;
    double time_s = 0.0;
    double efficiency = 0.0;
    std::uint64_t checksum = 0;
};

struct sweep_result
{
    std::string engine;
    std::string graph;
    unsigned workers = 0;
    std::vector<sample> samples;
    std::uint64_t metg_ns = 0;    // 0 => not reached at any granularity
    bool bounded = false;         // true when start_ns itself was >= 50 %
};

double ideal_seconds(tb::graph_spec const& spec, unsigned workers)
{
    return static_cast<double>(spec.total_points()) *
        static_cast<double>(spec.task_ns) * 1e-9 /
        static_cast<double>(workers);
}

// One measured run at a fixed granularity; returns wall seconds.
template <typename E>
double run_once_wall(tb::graph_spec const& spec, std::uint64_t* checksum)
{
    auto const t0 = std::chrono::steady_clock::now();
    auto const r = tb::run_graph<E>(spec);
    auto const t1 = std::chrono::steady_clock::now();
    *checksum = r.checksum;
    return std::chrono::duration<double>(t1 - t0).count();
}

// Granularity sweep: halve task_ns from start_ns until efficiency
// drops below 50 % (then stop — the knee has been found) or min_ns is
// passed. `measure` maps a fully-specified graph_spec to seconds.
template <typename Measure>
sweep_result sweep(std::string engine, tb::graph_spec spec,
    unsigned workers, std::uint64_t start_ns, std::uint64_t min_ns,
    Measure&& measure)
{
    sweep_result out;
    out.engine = std::move(engine);
    out.graph = tb::graph_name(spec.type);
    out.workers = workers;

    for (std::uint64_t ns = start_ns; ns >= min_ns; ns /= 2)
    {
        spec.task_ns = ns;
        sample s;
        s.task_ns = ns;
        s.time_s = measure(spec, &s.checksum);
        double const ideal = ideal_seconds(spec, workers);
        s.efficiency = s.time_s > 0.0 ? ideal / s.time_s : 0.0;
        if (s.efficiency > 1.0)
            s.efficiency = 1.0;    // timer noise at coarse grain
        out.samples.push_back(s);

        if (s.efficiency >= 0.5)
        {
            out.metg_ns = ns;
            out.bounded = true;
        }
        else if (out.bounded)
            break;    // past the knee
        if (ns == 0)
            break;
    }
    return out;
}

void print_sweep(sweep_result const& r)
{
    std::printf("\n-- %s / %s / %u worker(s) --\n", r.engine.c_str(),
        r.graph.c_str(), r.workers);
    std::printf("%12s %12s %12s %18s\n", "task[ns]", "time[ms]", "eff",
        "checksum");
    for (auto const& s : r.samples)
        std::printf("%12llu %12.3f %12.3f 0x%016llx\n",
            static_cast<unsigned long long>(s.task_ns), s.time_s * 1e3,
            s.efficiency, static_cast<unsigned long long>(s.checksum));
    if (r.bounded)
        std::printf("METG engine=%s graph=%s workers=%u metg_ns=%llu\n",
            r.engine.c_str(), r.graph.c_str(), r.workers,
            static_cast<unsigned long long>(r.metg_ns));
    else
        std::printf(
            "METG engine=%s graph=%s workers=%u metg_ns=unbounded\n",
            r.engine.c_str(), r.graph.c_str(), r.workers);
}

void append_json(std::string& json, sweep_result const& r)
{
    char buf[160];
    if (!json.empty())
        json += ",\n";
    std::snprintf(buf, sizeof(buf),
        "    {\"engine\": \"%s\", \"graph\": \"%s\", \"workers\": %u, "
        "\"metg_ns\": %lld,\n     \"sweep\": [",
        r.engine.c_str(), r.graph.c_str(), r.workers,
        r.bounded ? static_cast<long long>(r.metg_ns) : -1LL);
    json += buf;
    for (std::size_t i = 0; i != r.samples.size(); ++i)
    {
        auto const& s = r.samples[i];
        std::snprintf(buf, sizeof(buf),
            "%s{\"task_ns\": %llu, \"time_s\": %.9f, "
            "\"efficiency\": %.4f}",
            i ? ", " : "", static_cast<unsigned long long>(s.task_ns),
            s.time_s, s.efficiency);
        json += buf;
    }
    json += "]}";
}

}    // namespace

int main(int argc, char** argv)
{
    bench::options opt(argc, argv);
    if (opt.args.flag("help"))
    {
        print_flag_table();
        return 0;
    }

    tb::graph_spec base;
    base.width = static_cast<unsigned>(
        opt.args.int_or("mh:taskbench-width", 16));
    base.steps = static_cast<unsigned>(
        opt.args.int_or("mh:taskbench-steps", 16));
    base.payload_words = static_cast<unsigned>(
        opt.args.int_or("mh:taskbench-payload", 2));
    auto const start_ns = static_cast<std::uint64_t>(
        opt.args.int_or("mh:taskbench-start-ns", 262144));
    auto const min_ns = static_cast<std::uint64_t>(
        opt.args.int_or("mh:taskbench-min-ns", 256));

    auto const graphs =
        split_list(flag_or_default(opt.args, "mh:taskbench-graphs"));
    auto const engines =
        split_list(flag_or_default(opt.args, "mh:taskbench-engines"));
    std::vector<unsigned> workers;
    for (auto const& w :
        split_list(flag_or_default(opt.args, "mh:taskbench-workers")))
        workers.push_back(
            static_cast<unsigned>(std::strtoul(w.c_str(), nullptr, 10)));

    bench::print_platform_header(
        "Task Bench: METG(50%) per engine / graph / workers");
    std::printf("width=%u steps=%u payload=%u start=%lluns min=%lluns\n",
        base.width, base.steps, base.payload_words,
        static_cast<unsigned long long>(start_ns),
        static_cast<unsigned long long>(min_ns));
    std::printf("spin calibration: %llu iters/us\n",
        static_cast<unsigned long long>(tb::spin_iters_per_us()));

    std::string json;
    for (auto const& engine : engines)
    {
        for (unsigned n : workers)
        {
            // One real runtime per worker count, shared across graphs
            // and granularities (construction cost stays out of the
            // measured window either way).
            std::unique_ptr<minihpx::runtime> rt;
            if (engine == "minihpx")
            {
                minihpx::runtime_config config;
                config.sched.num_workers = n;
                rt = std::make_unique<minihpx::runtime>(config);
            }

            for (auto const& name : graphs)
            {
                auto const type = tb::parse_graph_type(name);
                if (!type)
                {
                    std::printf("unknown graph: %s\n", name.c_str());
                    continue;
                }
                tb::graph_spec spec = base;
                spec.type = *type;

                sweep_result r;
                if (engine == "minihpx")
                {
                    r = sweep(engine, spec, n, start_ns, min_ns,
                        [](tb::graph_spec const& s, std::uint64_t* c) {
                            return run_once_wall<
                                minihpx::engine::minihpx_engine>(s, c);
                        });
                }
                else if (engine == "std")
                {
                    r = sweep(engine, spec, n, start_ns, min_ns,
                        [](tb::graph_spec const& s, std::uint64_t* c) {
                            return run_once_wall<
                                minihpx::engine::std_engine>(s, c);
                        });
                }
                else if (engine == "sim")
                {
                    r = sweep(engine, spec, n, start_ns, min_ns,
                        [n](tb::graph_spec const& s, std::uint64_t* c) {
                            bench::sim_config config;
                            config.cores = n;
                            bench::simulator sim(config);
                            tb::run_result rr;
                            auto const report = sim.run(
                                [&] {
                                    rr = tb::run_graph<
                                        minihpx::engine::sim_engine>(s);
                                });
                            *c = rr.checksum;
                            return report.failed ? 0.0 :
                                                   report.exec_time_s;
                        });
                }
                else
                {
                    std::printf("unknown engine: %s\n", engine.c_str());
                    continue;
                }
                print_sweep(r);
                if (!json.empty() || !r.samples.empty())
                    append_json(json, r);
            }
        }
    }

    auto& st = tb::global_stats();
    std::printf("\n/taskbench/points/executed   %llu\n"
                "/taskbench/deps/edges        %llu\n"
                "/taskbench/graphs/completed  %llu\n",
        static_cast<unsigned long long>(st.points_executed.load()),
        static_cast<unsigned long long>(st.deps_edges.load()),
        static_cast<unsigned long long>(st.graphs_completed.load()));

    auto const json_path =
        flag_or_default(opt.args, "mh:taskbench-json");
    if (!json_path.empty())
    {
        if (std::FILE* f = std::fopen(json_path.c_str(), "w"))
        {
            std::fprintf(f,
                "{\n  \"bench\": \"task_bench\",\n"
                "  \"width\": %u, \"steps\": %u, \"payload_words\": %u,\n"
                "  \"results\": [\n%s\n  ]\n}\n",
                base.width, base.steps, base.payload_words, json.c_str());
            std::fclose(f);
            std::printf("wrote %s\n", json_path.c_str());
        }
        else
            std::printf("cannot write %s\n", json_path.c_str());
    }
    return 0;
}
