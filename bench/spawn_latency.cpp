// Spawn latency: ns per spawn->run->complete cycle, and proof that the
// pooled-frame fast path stops allocating once warm (DESIGN.md choice on
// single-block task frames, docs/EXPERIMENTS.md spawn-latency section).
//
// A producer task repeatedly spawns B tiny tasks into a reused future
// vector and joins them. After a warmup pass every object the cycle
// needs — task frame, thread descriptor, stack, inline unique_function
// buffer — comes from a per-worker cache, so the measured phase of the
// pooled path performs zero heap allocations. A global operator new hook
// counts every allocation on every thread to prove it.
//
//   $ ./spawn_latency [--tasks=B] [--reps=R] [--warmup=W]
//                     [--workers=1,4,16] [--fib=N] [--assert-zero-alloc]
//                     [--json=BENCH_spawn.json]
//
// --fib=N adds a recursive fib(N) cell per path at the largest worker
// count: the paper's Table V "very fine" granularity, where per-spawn
// cost is the whole story. --assert-zero-alloc exits non-zero if the
// pooled path allocates in steady state (the CI regression gate).
#include <minihpx/minihpx.hpp>
#include <minihpx/util/cli.hpp>
#include <minihpx/util/strings.hpp>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

namespace {

// ------------------------------------------------- counting allocator
// Process-wide: counts allocations from every thread, including the
// runtime's own workers. Deallocations are deliberately not counted —
// the gate is "does a steady-state spawn cycle reach the heap at all".
std::atomic<std::uint64_t> g_allocs{0};

std::uint64_t alloc_count() noexcept
{
    return g_allocs.load(std::memory_order_relaxed);
}

}    // namespace

void* operator new(std::size_t size)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::aligned_alloc(
            static_cast<std::size_t>(align), size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void operator delete(void* p) noexcept
{
    std::free(p);
}
void operator delete(void* p, std::size_t) noexcept
{
    std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept
{
    std::free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

using namespace minihpx;

namespace {

void tiny_task()
{
    volatile double x = 1.0;
    for (int i = 0; i < 16; ++i)
        x = x * 1.0000001 + 0.5;
}

char const* to_string(scheduler_config::spawn_path path)
{
    return path == scheduler_config::spawn_path::pooled_frame ? "pooled" :
                                                                "legacy";
}

struct cell
{
    scheduler_config::spawn_path path;
    unsigned workers;
    double ns_per_task;
    std::uint64_t steady_allocs;
};

// One producer rep: spawn `tasks` tiny tasks into `inflight` (capacity
// already reserved) and join them all.
void spawn_cycle(std::vector<future<void>>& inflight, std::size_t tasks)
{
    inflight.clear();
    for (std::size_t i = 0; i < tasks; ++i)
        inflight.push_back(async([] { tiny_task(); }));
    wait_all(inflight);
}

cell run_cell(scheduler_config::spawn_path path, unsigned workers,
    std::size_t tasks, unsigned reps, unsigned warmup)
{
    runtime_config config;
    config.sched.num_workers = workers;
    config.sched.spawn = path;
    runtime rt(config);

    double seconds = 0;
    std::uint64_t steady = 0;
    async([&] {
        std::vector<future<void>> inflight;
        inflight.reserve(tasks);

        // Warmup: populate frame/descriptor/stack caches and grow any
        // lazily-sized runtime structures. Multi-worker cells need a few
        // cycles for cached objects to rebalance across worker caches.
        for (unsigned r = 0; r < warmup; ++r)
            spawn_cycle(inflight, tasks);

        auto const allocs_before = alloc_count();
        auto const t0 = std::chrono::steady_clock::now();
        for (unsigned r = 0; r < reps; ++r)
            spawn_cycle(inflight, tasks);
        seconds = std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
                      .count();
        steady = alloc_count() - allocs_before;
    }).get();

    double const ns_per_task =
        seconds * 1e9 / static_cast<double>(tasks * reps);
    return {path, workers, ns_per_task, steady};
}

// Pure state-machinery latency: launch::sync runs the task inline, so
// the cycle is exactly frame-allocate + run + complete + release — no
// descriptor, stack, or context switch. The allocation saving is the
// whole story here, which makes this the most sensitive A/B cell.
cell run_sync_cell(scheduler_config::spawn_path path, unsigned workers,
    std::size_t tasks, unsigned reps)
{
    runtime_config config;
    config.sched.num_workers = workers;
    config.sched.spawn = path;
    runtime rt(config);

    double seconds = 0;
    std::uint64_t steady = 0;
    async([&] {
        for (std::size_t i = 0; i < tasks; ++i)
            async(launch::sync, [] { tiny_task(); }).get();

        auto const allocs_before = alloc_count();
        auto const t0 = std::chrono::steady_clock::now();
        for (unsigned r = 0; r < reps; ++r)
            for (std::size_t i = 0; i < tasks; ++i)
                async(launch::sync, [] { tiny_task(); }).get();
        seconds = std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
                      .count();
        steady = alloc_count() - allocs_before;
    }).get();

    double const ns_per_task =
        seconds * 1e9 / static_cast<double>(tasks * reps);
    return {path, workers, ns_per_task, steady};
}

// Table V "very fine" granularity: recursive fib, one task per node.
std::uint64_t fib(int n)
{
    if (n < 2)
        return static_cast<std::uint64_t>(n);
    auto left = async([n] { return fib(n - 2); });
    std::uint64_t const right = fib(n - 1);
    return left.get() + right;
}

cell run_fib_cell(
    scheduler_config::spawn_path path, unsigned workers, int n)
{
    runtime_config config;
    config.sched.num_workers = workers;
    config.sched.spawn = path;
    runtime rt(config);

    double seconds = 0;
    std::uint64_t steady = 0;
    std::uint64_t spawned = 0;
    async([&] {
        (void) fib(n);    // warmup
        auto const allocs_before = alloc_count();
        auto const t0 = std::chrono::steady_clock::now();
        std::uint64_t const result = fib(n);
        seconds = std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
                      .count();
        steady = alloc_count() - allocs_before;
        // fib(n) spawns one task per call with n >= 2:
        // count(n) = count(n-1) + count(n-2) + 1.
        std::vector<std::uint64_t> counts(static_cast<std::size_t>(n) + 1, 0);
        for (int i = 2; i <= n; ++i)
            counts[static_cast<std::size_t>(i)] =
                counts[static_cast<std::size_t>(i - 1)] +
                counts[static_cast<std::size_t>(i - 2)] + 1;
        spawned = counts[static_cast<std::size_t>(n)];
        (void) result;
    }).get();

    return {path, workers, seconds * 1e9 / static_cast<double>(spawned),
        steady};
}

// Best-of-K over a cell runner: min latency (least-disturbed trial),
// max steady allocations (the gate must not miss a dirty trial).
template <typename Runner>
cell best_of(unsigned trials, Runner&& run)
{
    cell best = run();
    for (unsigned t = 1; t < trials; ++t)
    {
        cell const c = run();
        best.ns_per_task = std::min(best.ns_per_task, c.ns_per_task);
        best.steady_allocs = std::max(best.steady_allocs, c.steady_allocs);
    }
    return best;
}

std::vector<unsigned> workers_from_cli(util::cli_args const& args)
{
    // split() returns views into its argument: keep the string alive.
    std::string const spec = args.value_or("workers", "1,4,16");
    std::vector<unsigned> workers;
    for (auto part : util::split(spec, ','))
        workers.push_back(static_cast<unsigned>(
            std::strtoul(std::string(part).c_str(), nullptr, 10)));
    return workers;
}

}    // namespace

int main(int argc, char** argv)
{
    util::cli_args args(argc, argv);
    auto const tasks = static_cast<std::size_t>(args.int_or("tasks", 10000));
    auto const reps = static_cast<unsigned>(args.int_or("reps", 5));
    auto const warmup = static_cast<unsigned>(args.int_or("warmup", 20));
    auto const trials = static_cast<unsigned>(args.int_or("best-of", 3));
    auto const fib_n = static_cast<int>(args.int_or("fib", 0));
    bool const assert_zero = args.flag("assert-zero-alloc");
    auto const workers = workers_from_cli(args);

    std::printf("spawn_latency: %zu tasks/cycle, %u measured cycles, "
                "single producer\n\n",
        tasks, reps);
    std::printf("%8s %8s %14s %14s\n", "workers", "path", "ns/task",
        "steady allocs");

    std::vector<cell> cells;
    for (unsigned n : workers)
    {
        for (auto path : {scheduler_config::spawn_path::legacy,
                 scheduler_config::spawn_path::pooled_frame})
        {
            cells.push_back(best_of(trials,
                [&] { return run_cell(path, n, tasks, reps, warmup); }));
            auto const& c = cells.back();
            std::printf("%8u %8s %14.1f %14llu\n", c.workers,
                to_string(c.path), c.ns_per_task,
                static_cast<unsigned long long>(c.steady_allocs));
        }
    }

    std::printf("\nlaunch::sync (inline, pure state machinery):\n");
    std::vector<cell> sync_cells;
    for (auto path : {scheduler_config::spawn_path::legacy,
             scheduler_config::spawn_path::pooled_frame})
    {
        sync_cells.push_back(best_of(
            trials, [&] { return run_sync_cell(path, 1, tasks, reps); }));
        auto const& c = sync_cells.back();
        std::printf("%8u %8s %14.1f %14llu\n", c.workers, to_string(c.path),
            c.ns_per_task, static_cast<unsigned long long>(c.steady_allocs));
    }

    unsigned const top = *std::max_element(workers.begin(), workers.end());
    double legacy_ns = 0, pooled_ns = 0;
    for (auto const& c : cells)
    {
        if (c.workers != top)
            continue;
        (c.path == scheduler_config::spawn_path::pooled_frame ? pooled_ns :
                                                                legacy_ns) =
            c.ns_per_task;
    }
    double const speedup = pooled_ns > 0 ? legacy_ns / pooled_ns : 0;
    std::printf("\npooled vs legacy at %u workers: %.2fx\n", top, speedup);
    double const sync_speedup = sync_cells[1].ns_per_task > 0 ?
        sync_cells[0].ns_per_task / sync_cells[1].ns_per_task :
        0;
    std::printf("pooled vs legacy, launch::sync: %.2fx\n", sync_speedup);

    std::vector<cell> fib_cells;
    if (fib_n > 1)
    {
        std::printf("\nfib(%d), one task per node (Table V very-fine "
                    "granularity):\n",
            fib_n);
        for (auto path : {scheduler_config::spawn_path::legacy,
                 scheduler_config::spawn_path::pooled_frame})
        {
            fib_cells.push_back(best_of(
                trials, [&] { return run_fib_cell(path, top, fib_n); }));
            auto const& c = fib_cells.back();
            std::printf("%8u %8s %14.1f %14llu\n", c.workers,
                to_string(c.path), c.ns_per_task,
                static_cast<unsigned long long>(c.steady_allocs));
        }
    }

    // The zero-alloc gate covers the 1-worker cells only: there object
    // flow is deterministic. With more workers, rebalancing between
    // per-worker caches may allocate a bounded trickle (reported above,
    // not gated).
    bool steady_clean = true;
    for (auto const* group : {&cells, &sync_cells})
        for (auto const& c : *group)
            if (c.workers == 1 &&
                c.path == scheduler_config::spawn_path::pooled_frame &&
                c.steady_allocs != 0)
                steady_clean = false;

    if (auto path = args.value("json"))
    {
        std::FILE* f = std::fopen(path->c_str(), "w");
        if (!f)
        {
            std::fprintf(stderr, "cannot open %s\n", path->c_str());
            return 1;
        }
        std::fprintf(f,
            "{\n  \"benchmark\": \"spawn_latency\",\n"
            "  \"tasks\": %zu,\n  \"reps\": %u,\n  \"results\": [\n",
            tasks, reps);
        auto emit = [f](std::vector<cell> const& cs, char const* mode,
                        bool last_group) {
            for (std::size_t i = 0; i < cs.size(); ++i)
                std::fprintf(f,
                    "    {\"mode\": \"%s\", \"path\": \"%s\", "
                    "\"workers\": %u, \"ns_per_task\": %.1f, "
                    "\"steady_allocs\": %llu}%s\n",
                    mode, to_string(cs[i].path), cs[i].workers,
                    cs[i].ns_per_task,
                    static_cast<unsigned long long>(cs[i].steady_allocs),
                    last_group && i + 1 == cs.size() ? "" : ",");
        };
        emit(cells, "cycle", false);
        emit(sync_cells, "sync", fib_cells.empty());
        emit(fib_cells, "fib", true);
        std::fprintf(f,
            "  ],\n  \"speedup_%uw\": %.3f,\n"
            "  \"speedup_sync\": %.3f,\n"
            "  \"pooled_steady_allocs_zero\": %s\n}\n",
            top, speedup, sync_speedup, steady_clean ? "true" : "false");
        std::fclose(f);
        std::printf("wrote %s\n", path->c_str());
    }

    if (assert_zero && !steady_clean)
    {
        std::fprintf(stderr,
            "FAIL: pooled spawn path allocated in steady state\n");
        return 1;
    }
    return 0;
}
