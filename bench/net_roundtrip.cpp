// Remote-invocation round-trip cost across the three transports the
// runtime ships: in-process loopback (pure marshal + dispatch cost),
// real TCP over localhost sockets, and the deterministic simulator
// fabric (virtual nanoseconds from sim::net_model — the numbers a
// distributed what-if experiment would reason with). Also measures raw
// archive serialization throughput, the floor under all of them.
//
//   $ ./net_roundtrip [--reps=R] [--payloads=0,1024,65536]
//                     [--json=BENCH_net.json]
//
// Loopback and TCP rows are wall-clock ns per invoke->result cycle;
// sim rows are virtual ns (model output, byte-deterministic).
#include <minihpx/net/net.hpp>
#include <minihpx/util/cli.hpp>
#include <minihpx/util/strings.hpp>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

using namespace minihpx;

namespace {

std::vector<std::uint8_t> echo(std::vector<std::uint8_t> payload)
{
    return payload;
}

struct row
{
    std::string transport;
    std::size_t payload_bytes = 0;
    double ns_per_roundtrip = 0.0;
    bool virtual_time = false;
};

double now_ns()
{
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::vector<std::uint8_t> make_payload(std::size_t size)
{
    std::vector<std::uint8_t> payload(size);
    for (std::size_t i = 0; i < size; ++i)
        payload[i] = static_cast<std::uint8_t>(i * 131);
    return payload;
}

double time_roundtrips(
    net::locality& loc, std::uint32_t dest, std::size_t size, unsigned reps)
{
    auto const payload = make_payload(size);
    // Warmup: connection buffers, action lookup, pending-map nodes.
    for (unsigned i = 0; i < 8; ++i)
        net::async<std::vector<std::uint8_t>>(
            loc, dest, "bench/echo", payload)
            .get();
    double const t0 = now_ns();
    for (unsigned i = 0; i < reps; ++i)
        net::async<std::vector<std::uint8_t>>(
            loc, dest, "bench/echo", payload)
            .get();
    return (now_ns() - t0) / reps;
}

double serialize_throughput_bytes_per_s(unsigned reps)
{
    auto const payload = make_payload(1 << 20);
    double bytes = 0.0;
    double const t0 = now_ns();
    for (unsigned i = 0; i < reps; ++i)
    {
        net::output_archive out;
        net::save(out, payload);
        auto wire = out.take();
        net::input_archive in(wire);
        auto back = net::load<std::vector<std::uint8_t>>(in);
        if (back.size() != payload.size())
            std::abort();
        bytes += 2.0 * static_cast<double>(wire.size());
    }
    return bytes / ((now_ns() - t0) * 1e-9);
}

}    // namespace

int main(int argc, char** argv)
{
    util::cli_args const args(argc, argv);
    unsigned const reps =
        static_cast<unsigned>(args.int_or("reps", 400));
    std::vector<std::size_t> payloads;
    for (auto part :
        util::split(args.value_or("payloads", "0,1024,65536"), ','))
        payloads.push_back(static_cast<std::size_t>(
            std::strtoull(std::string(part).c_str(), nullptr, 10)));

    net::register_action("bench/echo", &echo);
    std::vector<row> rows;

    // ---- loopback: dest == self, no transport ---------------------------
    {
        net::net_config config;
        config.id = 0;
        config.num_localities = 1;
        config.heartbeat_interval_ms = 0;
        net::locality loc(config);
        for (std::size_t size : payloads)
            rows.push_back(
                {"loopback", size, time_roundtrips(loc, 0, size, reps)});
        loc.stop();
    }

    // ---- tcp: two localities over localhost sockets ---------------------
    {
        perf::counter_registry reg0, reg1;
        net::net_config c0, c1;
        c0.id = 0;
        c0.num_localities = 2;
        c0.registry = &reg0;
        c0.inline_handlers = true;
        c1 = c0;
        c1.id = 1;
        c1.registry = &reg1;
        net::locality loc0(c0), loc1(c1);
        net::tcp_mesh mesh0(loc0), mesh1(loc1);
        std::vector<std::uint16_t> const ports = {
            mesh0.listen(0), mesh1.listen(0)};
        mesh1.connect(ports);
        mesh0.connect(ports);
        for (std::size_t size : payloads)
            rows.push_back(
                {"tcp", size, time_roundtrips(loc0, 1, size, reps)});
        loc0.stop();
        loc1.stop();
    }

    // ---- sim: virtual ns from the network model -------------------------
    {
        for (std::size_t size : payloads)
        {
            net::sim_fabric fabric(2);
            auto const payload = make_payload(size);
            std::uint64_t const t0 = fabric.now_ns();
            auto f = net::async<std::vector<std::uint8_t>>(
                fabric.at(0), 1, "bench/echo", payload);
            fabric.run();
            f.get();
            rows.push_back({"sim-virtual", size,
                static_cast<double>(fabric.now_ns() - t0), true});
        }
    }

    double const ser_bps = serialize_throughput_bytes_per_s(64);

    std::printf("%-12s %12s %18s\n", "transport", "payload_B",
        "ns/roundtrip");
    for (auto const& r : rows)
        std::printf("%-12s %12zu %18.1f%s\n", r.transport.c_str(),
            r.payload_bytes, r.ns_per_roundtrip,
            r.virtual_time ? "  (virtual)" : "");
    std::printf("serialize: %.1f MB/s\n", ser_bps / 1e6);

    if (auto path = args.value("json"))
    {
        std::FILE* f = std::fopen(path->c_str(), "w");
        if (!f)
        {
            std::fprintf(stderr, "cannot open %s\n", path->c_str());
            return 1;
        }
        std::fprintf(f,
            "{\n  \"benchmark\": \"net_roundtrip\",\n"
            "  \"reps\": %u,\n  \"results\": [\n",
            reps);
        for (std::size_t i = 0; i < rows.size(); ++i)
            std::fprintf(f,
                "    {\"transport\": \"%s\", \"payload_bytes\": %zu, "
                "\"ns_per_roundtrip\": %.1f, \"virtual\": %s}%s\n",
                rows[i].transport.c_str(), rows[i].payload_bytes,
                rows[i].ns_per_roundtrip,
                rows[i].virtual_time ? "true" : "false",
                i + 1 == rows.size() ? "" : ",");
        std::fprintf(f,
            "  ],\n  \"serialize_bytes_per_s\": %.1f\n}\n", ser_bps);
        std::fclose(f);
        std::printf("wrote %s\n", path->c_str());
    }
    return 0;
}
