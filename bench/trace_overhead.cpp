// Tracing overhead on the real runtime (ISSUE acceptance: always-on
// per-task tracing must cost <=10% wall clock at the default `sched`
// detail, with zero dropped events).
//
// Two very fine-grained Inncabs workloads (fib, fft) run tracing off
// vs tracing on with the binary sink streaming to /dev/null, so every
// spawn/begin/end of a microsecond-scale task pays the emit path.
//
// On the real engine `annotate_work` is a pure cost-model feed — it
// burns no CPU — so a naive port of fib has near-empty task bodies,
// several times finer than the suite's own calibration (fib.hpp models
// ~1.1 us of body per call, matching Table V's 1.37 us measured
// granularity). The fib workload here executes that modeled body as a
// real calibrated spin so the traced granularity is the one the suite
// (and the paper's budget) is defined against; `--body=0` restores the
// empty-body worst case for stress measurements.
//
//   $ ./trace_overhead [--workers=N] [--samples=S] [--n=FIB_N]
//                      [--body=NS] [--detail=LEVEL] [--ring=N]
//                      [--drain-ms=MS] [--destination=DEST]
//                      [--budget=PCT] [--json=BENCH_trace.json]
//
// Exits non-zero when a workload exceeds the budget or drops events,
// so CI can gate on it.
#include <inncabs/fft.hpp>
#include <inncabs/fib.hpp>
#include <inncabs/harness.hpp>
#include <minihpx/minihpx.hpp>
#include <minihpx/perf/perf.hpp>
#include <minihpx/trace/trace.hpp>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

using namespace minihpx;

namespace {

double median_ms(char const* name, unsigned samples,
    std::function<void()> const& body)
{
    return inncabs::run_samples(name, samples, body).median_ms();
}

// ---- calibrated busy-work so modeled task bodies take real time ------

volatile std::uint64_t spin_sink = 0;

std::uint64_t spin_iterations(std::uint64_t iters) noexcept
{
    std::uint64_t x = 0x9e3779b97f4a7c15ull + iters;
    for (std::uint64_t i = 0; i < iters; ++i)
    {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
    }
    return x;
}

double g_iters_per_ns = 0.0;

double calibrate_iters_per_ns()
{
    constexpr std::uint64_t probe = 1u << 22;
    spin_sink = spin_sink + spin_iterations(probe / 4);    // warm up
    auto const t0 = std::chrono::steady_clock::now();
    spin_sink = spin_sink + spin_iterations(probe);
    auto const t1 = std::chrono::steady_clock::now();
    auto const ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count();
    return static_cast<double>(probe) / static_cast<double>(ns);
}

// minihpx engine whose annotate_work *executes* the modeled cpu_ns as
// a calibrated spin (the plain engine only feeds the PMU model).
struct burning_engine : inncabs::minihpx_engine
{
    static void annotate_work(minihpx::work_annotation const& w) noexcept
    {
        if (w.cpu_ns != 0)
            spin_sink = spin_sink +
                spin_iterations(static_cast<std::uint64_t>(
                    static_cast<double>(w.cpu_ns) * g_iters_per_ns));
        inncabs::minihpx_engine::annotate_work(w);
    }
};

struct row
{
    char const* name;
    double base_ms;
    double traced_ms;
    double overhead_pct;
    std::uint64_t events;
    std::uint64_t dropped;
    double self_estimate_pct;    // the /trace/overhead-pct counter value
    double flush_ms;             // deferred serialization at stop()
};

}    // namespace

int main(int argc, char** argv)
{
    util::cli_args args(argc, argv);
    unsigned const workers =
        static_cast<unsigned>(args.int_or("workers", 2));
    unsigned const samples =
        static_cast<unsigned>(args.int_or("samples", 7));
    int const fib_n = static_cast<int>(args.int_or("n", 21));
    auto const body_ns = static_cast<std::uint64_t>(
        args.int_or("body", inncabs::fib_bench<burning_engine>::params{}
                                .body_ns));
    auto const fft_n =
        static_cast<std::size_t>(args.int_or("fft-n", 1 << 12));
    double const budget = args.double_or("budget", 10.0);
    std::string const destination =
        args.value_or("destination", "mhtrace:/dev/null");
    std::string const detail = args.value_or("detail", "");
    // Default: flight-recorder capture. The rings are sized to hold
    // the whole run and the drain thread stays parked until stop(), so
    // the timed region pays only the emit path — on a single-core host
    // a streaming drain competes with the workers for the CPU and its
    // cost would be measured as application slowdown. The deferred
    // serialization is not hidden: it is timed and reported as
    // flush_ms. Pass --drain-ms=2 --ring=32768 to measure the
    // streaming configuration instead.
    auto const ring =
        static_cast<std::size_t>(args.int_or("ring", 1 << 20));
    double const drain_ms = args.double_or("drain-ms", 0.0);

    std::printf("== tracing overhead (detail=%s, sink=%s, "
                "%u workers, %u samples) ==\n\n",
        detail.empty() ? "default" : detail.c_str(), destination.c_str(),
        workers, samples);

    g_iters_per_ns = calibrate_iters_per_ns();

    runtime_config config;
    config.sched.num_workers = workers;
    runtime rt(config);

    perf::counter_registry registry;
    perf::register_all_runtime_counters(registry, rt);

    struct workload
    {
        char const* name;
        std::function<void()> body;
    };
    std::vector<workload> const workloads = {
        {"fib", [&] {
             (void) inncabs::fib_bench<burning_engine>::run(
                 {.n = fib_n, .body_ns = body_ns});
         }},
        {"fft", [&] {
             // Batch: one fft transform is sub-millisecond at the
             // default size — too short for a stable median.
             for (int i = 0; i < 8; ++i)
                 (void) inncabs::fft_bench<inncabs::minihpx_engine>::run(
                     {.n = fft_n});
         }},
    };

    std::vector<row> rows;
    bool ok = true;
    for (auto const& w : workloads)
    {
        w.body();    // warm-up: stack pool, lazy init, page faults
        double const base_ms = median_ms(w.name, samples, w.body);

        trace::trace_options options;
        options.enabled = true;
        options.destination = destination;
        options.ring_capacity = ring;
        // 0 = flight-recorder mode: no periodic drain, serialize at
        // stop().
        options.drain_interval_ms = drain_ms > 0.0 ? drain_ms : 1e9;
        if (!detail.empty())
            options.detail = trace::parse_detail_or_default(detail);
        trace::session session(registry, options);
        double const traced_ms = median_ms(w.name, samples, w.body);
        auto const flush_t0 = std::chrono::steady_clock::now();
        session.stop();
        auto const flush_ms =
            static_cast<double>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - flush_t0)
                    .count()) /
            1000.0;

        row r;
        r.name = w.name;
        r.base_ms = base_ms;
        r.traced_ms = traced_ms;
        r.overhead_pct = (traced_ms - base_ms) / base_ms * 100.0;
        r.events = session.events_recorded();
        r.dropped = session.events_dropped();
        r.self_estimate_pct = session.overhead_pct();
        r.flush_ms = flush_ms;
        rows.push_back(r);

        std::printf("%s:\n", w.name);
        std::printf("  %-28s %10.2f ms\n", "tracing off", base_ms);
        std::printf("  %-28s %10.2f ms  (%+.1f%%)%s\n", "tracing on",
            traced_ms, r.overhead_pct,
            r.overhead_pct > budget ? "  ** exceeds budget **" : "");
        std::printf("  %-28s %10llu (%llu dropped%s)\n", "events",
            static_cast<unsigned long long>(r.events),
            static_cast<unsigned long long>(r.dropped),
            r.dropped ? " ** must be 0 **" : "");
        std::printf("  %-28s %10.2f %%\n", "self-estimated overhead",
            r.self_estimate_pct);
        std::printf("  %-28s %10.2f ms  (outside timed region)\n\n",
            "flush at stop()", r.flush_ms);

        if (r.overhead_pct > budget || r.dropped != 0)
            ok = false;
    }

    std::printf("budget: <=%.1f%% overhead at default detail, 0 drops.\n",
        budget);

    if (auto path = args.value("json"))
    {
        std::FILE* f = std::fopen(path->c_str(), "w");
        if (!f)
        {
            std::fprintf(stderr, "cannot open %s\n", path->c_str());
            return 1;
        }
        std::fprintf(f,
            "{\n  \"benchmark\": \"trace_overhead\",\n"
            "  \"workers\": %u,\n  \"budget_pct\": %.1f,\n"
            "  \"results\": [\n",
            workers, budget);
        for (std::size_t i = 0; i < rows.size(); ++i)
            std::fprintf(f,
                "    {\"workload\": \"%s\", \"base_ms\": %.3f, "
                "\"traced_ms\": %.3f, \"overhead_pct\": %.2f, "
                "\"events\": %llu, \"dropped\": %llu, "
                "\"self_estimate_pct\": %.2f, \"flush_ms\": %.3f}%s\n",
                rows[i].name, rows[i].base_ms, rows[i].traced_ms,
                rows[i].overhead_pct,
                static_cast<unsigned long long>(rows[i].events),
                static_cast<unsigned long long>(rows[i].dropped),
                rows[i].self_estimate_pct, rows[i].flush_ms,
                i + 1 < rows.size() ? "," : "");
        std::fprintf(f, "  ],\n  \"pass\": %s\n}\n", ok ? "true" : "false");
        std::fclose(f);
        std::printf("wrote %s\n", path->c_str());
    }
    return ok ? 0 : 2;
}
