// Table V reproduction: benchmark classification and granularity.
//
// For every Inncabs benchmark: the average task duration measured on
// one core (the paper reads /threads{locality#0/total}/time/average),
// the derived granularity class, and the strong-scaling limit ("to x"
// means execution time improves only up to x cores) for both the
// std::async and the HPX-style runtime.
#include "common.hpp"

#include <cmath>
#include <cstring>

namespace {

char const* classify(double us)
{
    if (us < 5.0)
        return "very fine";
    if (us < 150.0)
        return "fine";
    if (us < 500.0)
        return "moderate";
    return "coarse";
}

// Largest core count in the sweep where time still improved (>5%
// better than the best seen at fewer cores); "fail" when the run dies.
std::string scaling_limit(inncabs::benchmark_entry const& entry,
    bench::sched_model model, std::vector<unsigned> const& cores,
    bench::input_scale scale)
{
    double best = 0.0;
    unsigned best_cores = 0;
    bool any = false;
    for (unsigned n : cores)
    {
        auto const report = bench::run_sim(entry, model, n, scale);
        if (report.failed)
            return any ? "fail@" + std::to_string(n) : "fail";
        any = true;
        if (best_cores == 0 || report.exec_time_s < best * 0.95)
        {
            best = report.exec_time_s;
            best_cores = n;
        }
    }
    return "to " + std::to_string(best_cores);
}

}    // namespace

int main(int argc, char** argv)
{
    bench::options opt(argc, argv);
    auto const scale = opt.scale;
    auto const cores = opt.cores;

    opt.print_header("Table V: benchmark classification and granularity");
    std::printf("\n");

    std::printf("%-10s | %14s %-10s | %10s | %8s | %8s\n", "benchmark",
        "task dur[us]", "class", "tasks", "std", "hpx");
    std::printf("%.*s\n", 80,
        "--------------------------------------------------------------"
        "------------------");

    for (auto const& entry : inncabs::suite())
    {
        // Task duration on one core (paper protocol for grain size).
        auto const one_core = bench::run_sim(
            entry, bench::sched_model::hpx_like, 1, scale);
        double const dur_us = one_core.avg_task_duration_us();

        auto const std_limit = scaling_limit(
            entry, bench::sched_model::std_like, cores, scale);
        auto const hpx_limit = scaling_limit(
            entry, bench::sched_model::hpx_like, cores, scale);

        std::printf("%-10s | %14.2f %-10s | %10llu | %8s | %8s\n",
            entry.name.c_str(), dur_us, classify(dur_us),
            static_cast<unsigned long long>(one_core.tasks_executed),
            std_limit.c_str(), hpx_limit.c_str());
    }

    std::printf(
        "\nshape targets (paper Table V): alignment/sparselu/round coarse\n"
        "(~1-10 ms) scaling to 20 on both; pyramids moderate (~250 us);\n"
        "sort/strassen/nqueens fine (25-110 us), HPX out-scaling std;\n"
        "fft/fib/health/uts/qap/intersim/floorplan very fine (~1-5 us),\n"
        "std failing or not scaling while HPX still runs.\n");
    return 0;
}
