// Figures 1-7 reproduction: strong-scaling execution time, HPX vs
// C++11-Standard (thread-per-task), one series pair per benchmark.
//
//   Fig 1 alignment   coarse: both scale to 20
//   Fig 2 pyramids    moderate: std faster at low counts, equal at 20
//   Fig 3 strassen    fine: HPX scales (speedup ~11), std struggles
//   Fig 4 sort        fine: HPX to 16, std to 10
//   Fig 5 fft         very fine: HPX limited, std much slower
//   Fig 6 uts         very fine: HPX to socket boundary, std fails
//   Fig 7 intersim    very fine: HPX limited, std degrades
#include "common.hpp"

int main(int argc, char** argv)
{
    bench::options opt(argc, argv);
    auto const scale = opt.scale;
    auto const cores = opt.cores;
    auto const names = opt.names_or(
        {"alignment", "pyramids", "strassen", "sort", "fft", "uts",
            "intersim"});

    opt.print_header(
        "Figs 1-7: execution time vs cores (HPX vs C++11 Standard)");

    int fig = 1;
    for (auto const& name : names)
    {
        auto const* entry = inncabs::find_benchmark(name);
        if (!entry)
        {
            std::printf("unknown benchmark: %s\n", name.c_str());
            continue;
        }
        std::printf("\n-- Fig %d: %s --\n", fig++, name.c_str());
        std::printf("%6s %14s %14s %10s %10s\n", "cores", "hpx[ms]",
            "std[ms]", "hpx spdup", "std spdup");

        double hpx_base = 0, std_base = 0;
        for (unsigned n : cores)
        {
            auto const hpx = bench::run_sim(
                *entry, bench::sched_model::hpx_like, n, scale);
            auto const stdr = bench::run_sim(
                *entry, bench::sched_model::std_like, n, scale);
            if (n == cores.front())
            {
                hpx_base = hpx.exec_time_s;
                std_base = stdr.exec_time_s;
            }
            char hs[16] = "n/a", ss[16] = "n/a";
            if (!hpx.failed && hpx.exec_time_s > 0)
                std::snprintf(
                    hs, sizeof(hs), "%.2f", hpx_base / hpx.exec_time_s);
            if (!stdr.failed && stdr.exec_time_s > 0)
                std::snprintf(
                    ss, sizeof(ss), "%.2f", std_base / stdr.exec_time_s);
            std::printf("%6u %14s %14s %10s %10s\n", n,
                bench::time_cell(hpx).c_str(),
                bench::time_cell(stdr).c_str(), hs, ss);
        }
    }
    return 0;
}
