// §V-C claim reproduction: the cost of intrinsic performance-counter
// collection on the *real* minihpx runtime.
//
// Paper: "usually very small (within variability noise), but sometimes
// up to 10% with very fine granularity tasks when run on one or two
// cores. When PAPI counters are queried this overhead can go up to
// 16%." We run a very fine-grained workload (fib) three ways —
// counters off, software counters evaluated+reset per sample, software
// plus PAPI counters — and report the median overhead.
#include <inncabs/fib.hpp>
#include <inncabs/harness.hpp>
#include <minihpx/minihpx.hpp>
#include <minihpx/papi/papi_engine.hpp>
#include <minihpx/perf/perf.hpp>

#include <cstdio>

using namespace minihpx;

namespace {

double median_run_ms(unsigned samples, int fib_n)
{
    auto const result = inncabs::run_samples("fib", samples, [&] {
        (void) inncabs::fib_bench<inncabs::minihpx_engine>::run(
            {.n = fib_n, .body_ns = 0});
    });
    return result.median_ms();
}

}    // namespace

int main(int argc, char** argv)
{
    util::cli_args args(argc, argv);
    unsigned const workers =
        static_cast<unsigned>(args.int_or("workers", 2));
    unsigned const samples =
        static_cast<unsigned>(args.int_or("samples", 7));
    int const fib_n = static_cast<int>(args.int_or("n", 21));

    std::printf("== counter collection overhead (real runtime, fib(%d), "
                "%u workers, %u samples) ==\n\n",
        fib_n, workers, samples);

    runtime_config config;
    config.sched.num_workers = workers;
    runtime rt(config);

    perf::counter_registry registry;
    perf::register_all_runtime_counters(registry, rt);
    papi::papi_engine papi_engine(workers);
    papi_engine.register_counters(registry);

    // 1) no counters active
    double const base_ms = median_run_ms(samples, fib_n);

    // 2) software counters, evaluated-and-reset around every sample
    double sw_ms = 0;
    {
        perf::session_options options;
        options.counter_names = {
            "/threads{locality#0/total}/count/cumulative",
            "/threads{locality#0/total}/time/average",
            "/threads{locality#0/total}/time/average-overhead",
            "/threads{locality#0/total}/time/cumulative",
            "/threads{locality#0/total}/time/cumulative-overhead",
            "/threads{locality#0/total}/idle-rate",
        };
        options.destination = "/dev/null";
        options.print_at_shutdown = false;
        perf::counter_session session(registry, options);
        sw_ms = median_run_ms(samples, fib_n);
    }

    // 3) software + PAPI counters (the annotation sink is now live, so
    // every task also feeds the virtual PMU)
    double papi_ms = 0;
    {
        papi_engine.install();
        perf::session_options options;
        options.counter_names = {
            "/threads{locality#0/total}/time/average",
            "/threads{locality#0/total}/time/average-overhead",
            "/papi{locality#0/total}/OFFCORE_REQUESTS:ALL_DATA_RD",
            "/papi{locality#0/total}/OFFCORE_REQUESTS:DEMAND_CODE_RD",
            "/papi{locality#0/total}/OFFCORE_REQUESTS:DEMAND_RFO",
            "/papi{locality#0/total}/PAPI_TOT_INS",
        };
        options.destination = "/dev/null";
        options.print_at_shutdown = false;
        perf::counter_session session(registry, options);
        papi_ms = median_run_ms(samples, fib_n);
        papi_engine.uninstall();
    }

    auto pct = [&](double ms) { return (ms - base_ms) / base_ms * 100.0; };
    std::printf("%-34s %10.2f ms\n", "no counters", base_ms);
    std::printf("%-34s %10.2f ms  (%+.1f%%)\n",
        "software counters (eval+reset)", sw_ms, pct(sw_ms));
    std::printf("%-34s %10.2f ms  (%+.1f%%)\n",
        "software + PAPI counters", papi_ms, pct(papi_ms));
    std::printf("\nshape target (paper): <=~10%% software, <=~16%% with "
                "PAPI at very fine granularity.\n");
    return 0;
}
