// Microbenchmarks of the runtime primitives (google-benchmark),
// including the design-choice ablations called out in DESIGN.md §5:
// assembly vs ucontext context switch, async vs fork spawn order,
// queue operations, counter evaluation cost.
#include <benchmark/benchmark.h>

#include <minihpx/minihpx.hpp>
#include <minihpx/perf/perf.hpp>
#include <minihpx/threads/context.hpp>
#include <minihpx/threads/stack.hpp>
#include <minihpx/threads/thread_queue.hpp>

#include <memory>

namespace mt = minihpx::threads;

// ---- context switch ablation: fcontext (asm) vs ucontext ---------------

namespace {

template <typename Context>
struct switcher
{
    Context main_ctx, task_ctx;
    mt::stack stk{64 * 1024};
    bool stop = false;

    static void entry(void* arg)
    {
        auto* self = static_cast<switcher*>(arg);
        while (!self->stop)
            Context::switch_to(self->task_ctx, self->main_ctx);
        Context::switch_to(self->task_ctx, self->main_ctx);
    }

    switcher()
    {
        task_ctx.create(stk.base(), stk.size(), &entry, this);
    }

    void ping() { Context::switch_to(main_ctx, task_ctx); }
    void shutdown()
    {
        stop = true;
        ping();
    }
};

}    // namespace

template <typename Context>
static void BM_context_switch(benchmark::State& state)
{
    switcher<Context> s;
    for (auto _ : state)
        s.ping();    // one round trip = two switches
    s.shutdown();
    state.SetItemsProcessed(state.iterations() * 2);
}
#if defined(MINIHPX_HAVE_FCONTEXT)
BENCHMARK(BM_context_switch<mt::fcontext>)->Name("context_switch/fcontext");
#endif
BENCHMARK(BM_context_switch<mt::ucontext_context>)
    ->Name("context_switch/ucontext");

// ---- queue ops (both policies: mutex deque vs Chase-Lev) ----------------

template <mt::queue_policy Policy>
static void BM_queue_push_pop(benchmark::State& state)
{
    mt::thread_queue q(Policy);
    mt::thread_data td;
    for (auto _ : state)
    {
        q.push(&td);
        benchmark::DoNotOptimize(q.pop());
    }
}
BENCHMARK(BM_queue_push_pop<mt::queue_policy::mutex_deque>)
    ->Name("queue_push_pop/mutex");
BENCHMARK(BM_queue_push_pop<mt::queue_policy::chase_lev>)
    ->Name("queue_push_pop/chase-lev");

template <mt::queue_policy Policy>
static void BM_queue_steal(benchmark::State& state)
{
    mt::thread_queue q(Policy);
    mt::thread_data td;
    for (auto _ : state)
    {
        q.push(&td);
        benchmark::DoNotOptimize(q.steal());
    }
}
BENCHMARK(BM_queue_steal<mt::queue_policy::mutex_deque>)
    ->Name("queue_steal/mutex");
BENCHMARK(BM_queue_steal<mt::queue_policy::chase_lev>)
    ->Name("queue_steal/chase-lev");

template <mt::queue_policy Policy>
static void BM_queue_inject_pop(benchmark::State& state)
{
    // Cross-thread submission path: inbox under chase-lev, plain
    // locked push under the mutex policy.
    mt::thread_queue q(Policy);
    mt::thread_data td;
    for (auto _ : state)
    {
        q.inject(&td);
        benchmark::DoNotOptimize(q.pop());
    }
}
BENCHMARK(BM_queue_inject_pop<mt::queue_policy::mutex_deque>)
    ->Name("queue_inject_pop/mutex");
BENCHMARK(BM_queue_inject_pop<mt::queue_policy::chase_lev>)
    ->Name("queue_inject_pop/chase-lev");

// ---- stack pool ----------------------------------------------------------

static void BM_stack_pool_cycle(benchmark::State& state)
{
    mt::stack_pool pool(64 * 1024);
    pool.release(pool.acquire());    // warm one entry
    for (auto _ : state)
    {
        auto s = pool.acquire();
        pool.release(std::move(s));
    }
}
BENCHMARK(BM_stack_pool_cycle);

// ---- task spawn / sync on the real runtime -------------------------------

namespace {

struct runtime_fixture
{
    minihpx::runtime rt;
    runtime_fixture() : rt(make_config()) {}
    static minihpx::runtime_config make_config()
    {
        minihpx::runtime_config config;
        config.sched.num_workers = 2;
        return config;
    }
};

runtime_fixture& global_rt()
{
    static runtime_fixture fixture;
    return fixture;
}

}    // namespace

static void BM_async_get(benchmark::State& state)
{
    global_rt();
    for (auto _ : state)
        benchmark::DoNotOptimize(minihpx::async([] { return 1; }).get());
}
BENCHMARK(BM_async_get);

static void BM_async_fork_get(benchmark::State& state)
{
    global_rt();
    for (auto _ : state)
    {
        // fork policy from a task context (the interesting case)
        auto outer = minihpx::async([] {
            return minihpx::async(
                minihpx::launch::fork, [] { return 1; })
                .get();
        });
        benchmark::DoNotOptimize(outer.get());
    }
}
BENCHMARK(BM_async_fork_get);

static void BM_async_sync_policy(benchmark::State& state)
{
    global_rt();
    for (auto _ : state)
        benchmark::DoNotOptimize(
            minihpx::async(minihpx::launch::sync, [] { return 1; }).get());
}
BENCHMARK(BM_async_sync_policy);

static void BM_future_set_get_same_thread(benchmark::State& state)
{
    global_rt();
    for (auto _ : state)
    {
        minihpx::promise<int> p;
        auto f = p.get_future();
        p.set_value(42);
        benchmark::DoNotOptimize(f.get());
    }
}
BENCHMARK(BM_future_set_get_same_thread);

static void BM_mutex_uncontended(benchmark::State& state)
{
    global_rt();
    minihpx::mutex m;
    for (auto _ : state)
    {
        m.lock();
        m.unlock();
    }
}
BENCHMARK(BM_mutex_uncontended);

// ---- counter framework costs ----------------------------------------------

static void BM_counter_name_parse(benchmark::State& state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(minihpx::perf::parse_counter_name(
            "/threads{locality#0/worker-thread#3}/time/average"));
}
BENCHMARK(BM_counter_name_parse);

static void BM_counter_evaluate(benchmark::State& state)
{
    auto& fixture = global_rt();
    minihpx::perf::counter_registry registry;
    minihpx::perf::register_thread_counters(
        registry, fixture.rt.get_scheduler());
    auto c = registry.create("/threads{locality#0/total}/time/average");
    for (auto _ : state)
        benchmark::DoNotOptimize(c->get_value(true));
}
BENCHMARK(BM_counter_evaluate);

static void BM_counter_handle_evaluate(benchmark::State& state)
{
    // Resolve-once handle (satellite of the handle API redesign): the
    // string parse/lookup happens here, outside the timed loop.
    auto& fixture = global_rt();
    minihpx::perf::counter_registry registry;
    minihpx::perf::register_thread_counters(
        registry, fixture.rt.get_scheduler());
    auto h = registry.resolve("/threads{locality#0/total}/time/average");
    for (auto _ : state)
        benchmark::DoNotOptimize(h.evaluate(true));
}
BENCHMARK(BM_counter_handle_evaluate);

static void BM_counter_lookup_evaluate(benchmark::State& state)
{
    // What the telemetry sampler used to pay per sample: full string
    // resolve on every evaluation. Compare against
    // BM_counter_handle_evaluate.
    auto& fixture = global_rt();
    minihpx::perf::counter_registry registry;
    minihpx::perf::register_thread_counters(
        registry, fixture.rt.get_scheduler());
    for (auto _ : state)
    {
        auto c = registry.create("/threads{locality#0/total}/time/average");
        benchmark::DoNotOptimize(c->get_value(true));
    }
}
BENCHMARK(BM_counter_lookup_evaluate);

static void BM_work_annotation_no_sink(benchmark::State& state)
{
    minihpx::set_work_sink(nullptr);
    for (auto _ : state)
        minihpx::annotate_work({.cpu_ns = 100, .data_rd_bytes = 64});
}
BENCHMARK(BM_work_annotation_no_sink);

BENCHMARK_MAIN();
