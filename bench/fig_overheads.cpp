// Figures 8-12 reproduction: overhead decomposition via the intrinsic
// counters, for the HPX-style runtime.
//
// Per core count: execution time vs ideal scaling, task time per core
// (the /threads/time/cumulative counter / cores) vs its ideal, and
// scheduling overhead per core (/threads/time/cumulative-overhead /
// cores). Paper shape: coarse benchmarks (Fig 8 alignment) track the
// ideal with negligible overhead; fine ones (Fig 10 strassen) open a
// gap; very fine ones (Fig 11 fft, Fig 12 uts) have overhead comparable
// to task time and blow up past the socket boundary.
#include "common.hpp"

int main(int argc, char** argv)
{
    bench::options opt(argc, argv);
    auto const scale = opt.scale;
    auto const cores = opt.cores;
    auto const names =
        opt.names_or({"alignment", "pyramids", "strassen", "fft", "uts"});

    opt.print_header(
        "Figs 8-12: overhead decomposition from intrinsic counters (HPX)");

    int fig = 8;
    for (auto const& name : names)
    {
        auto const* entry = inncabs::find_benchmark(name);
        if (!entry)
        {
            std::printf("unknown benchmark: %s\n", name.c_str());
            continue;
        }
        std::printf("\n-- Fig %d: %s overheads --\n", fig++, name.c_str());
        std::printf("%6s %12s %12s %14s %14s %14s %12s\n", "cores",
            "exec[ms]", "ideal[ms]", "tasktime/c[ms]", "ideal/c[ms]",
            "sched/c[ms]", "avgdur[us]");

        double t1 = 0, task1 = 0;
        for (unsigned n : cores)
        {
            auto const r = bench::run_sim(
                *entry, bench::sched_model::hpx_like, n, scale);
            if (r.failed)
            {
                std::printf("%6u %12s\n", n, "fail");
                continue;
            }
            if (n == cores.front())
            {
                t1 = r.exec_time_s;
                task1 = r.task_time_s;
            }
            std::printf(
                "%6u %12.1f %12.1f %14.1f %14.1f %14.1f %12.2f\n", n,
                r.exec_time_s * 1e3, t1 / n * 1e3,
                r.task_time_s / n * 1e3, task1 / n * 1e3,
                r.sched_overhead_s / n * 1e3, r.avg_task_duration_us());
        }
    }
    return 0;
}
