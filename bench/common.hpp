// Shared plumbing for the table/figure reproduction harnesses.
//
// Every binary prints the simulated platform header (Table III), runs
// the named workloads on the simulated node, and emits the same rows /
// series the paper reports. Absolute numbers are model outputs; the
// *shape* (who wins, rough factors, where scaling stops) is the
// reproduction target — see EXPERIMENTS.md.
#pragma once

#include <inncabs/harness.hpp>
#include <minihpx/sim/simulator.hpp>
#include <minihpx/util/cli.hpp>
#include <minihpx/util/strings.hpp>

#include <cstdio>
#include <string>
#include <vector>

namespace bench {

using inncabs::benchmark_entry;
using inncabs::input_scale;
using minihpx::sim::sched_model;
using minihpx::sim::sim_config;
using minihpx::sim::sim_report;
using minihpx::sim::simulator;

inline input_scale scale_from_cli(minihpx::util::cli_args const& args)
{
    auto const s = args.value_or("scale", "paper");
    if (s == "tiny")
        return input_scale::tiny;
    if (s == "default")
        return input_scale::bench_default;
    return input_scale::paper;
}

// Strong-scaling x axis used throughout the paper's figures.
inline std::vector<unsigned> core_sweep(minihpx::util::cli_args const& args)
{
    if (args.has("cores"))
    {
        std::vector<unsigned> cores;
        for (auto part :
            minihpx::util::split(args.value_or("cores", ""), ','))
            cores.push_back(
                static_cast<unsigned>(std::strtoul(
                    std::string(part).c_str(), nullptr, 10)));
        return cores;
    }
    return {1, 2, 4, 6, 8, 10, 12, 16, 20};
}

// One simulated run of a suite benchmark.
inline sim_report run_sim(benchmark_entry const& entry, sched_model model,
    unsigned cores, input_scale scale, std::uint64_t seed = 42)
{
    sim_config config;
    config.model = model;
    config.cores = cores;
    config.seed = seed;
    config.skip_compute = true;    // virtual results only
    simulator sim(config);
    return sim.run([&] { entry.run_sim_body(scale); });
}

inline void print_platform_header(char const* title)
{
    auto const machine = minihpx::sim::machine_desc::ivy_bridge_2s_20c();
    std::printf("== %s ==\n%s\n\n", title, machine.describe().c_str());
}

inline char const* scale_name(input_scale scale)
{
    switch (scale)
    {
    case input_scale::tiny:
        return "tiny";
    case input_scale::bench_default:
        return "default";
    case input_scale::paper:
    default:
        return "paper";
    }
}

// "1234" or "fail" cell for an exec-time column (ms).
inline std::string time_cell(sim_report const& report)
{
    if (report.failed)
        return "fail";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", report.exec_time_s * 1e3);
    return buf;
}

// The argv prologue every figure/table binary used to open with by
// hand: parse, resolve the input scale and core sweep, pick benchmark
// names from the positionals with a per-binary default, print the
// platform header. One struct so drivers differ only in what they
// measure, not in how they are invoked.
struct options
{
    minihpx::util::cli_args args;
    input_scale scale;
    std::vector<unsigned> cores;

    options(int argc, char const* const* argv)
      : args(argc, argv)
      , scale(scale_from_cli(args))
      , cores(core_sweep(args))
    {
    }

    // Positional benchmark names, or `dflt` when none were given.
    std::vector<std::string> names_or(
        std::initializer_list<char const*> dflt) const
    {
        std::vector<std::string> names = args.positionals();
        if (names.empty())
            names.assign(dflt.begin(), dflt.end());
        return names;
    }

    // Platform header plus the input-scale line.
    void print_header(char const* title) const
    {
        print_platform_header(title);
        std::printf("input scale: %s\n", scale_name(scale));
    }
};

}    // namespace bench
