// Figures 13-15 reproduction: off-core memory bandwidth vs cores,
// derived exactly as in paper §V-C — the sum of the three modeled
// OFFCORE_REQUESTS event counts times the 64 B line size divided by
// execution time.
//
// Paper shape: bandwidth grows with cores and bends toward the
// per-socket ceiling; coarse compute-heavy tasks (alignment) stay well
// below it, the moderate memory-streaming stencil (pyramids)
// approaches saturation.
#include "common.hpp"

int main(int argc, char** argv)
{
    bench::options opt(argc, argv);
    auto const scale = opt.scale;
    auto const cores = opt.cores;
    auto const names = opt.names_or({"alignment", "pyramids", "strassen"});

    opt.print_header("Figs 13-15: OFFCORE bandwidth vs cores (HPX)");

    int fig = 13;
    for (auto const& name : names)
    {
        auto const* entry = inncabs::find_benchmark(name);
        if (!entry)
        {
            std::printf("unknown benchmark: %s\n", name.c_str());
            continue;
        }
        std::printf("\n-- Fig %d: %s OFFCORE bandwidth --\n", fig++,
            name.c_str());
        std::printf("%6s %12s %14s %14s %14s %12s\n", "cores", "exec[ms]",
            "rd[Mlines]", "rfo[Mlines]", "code[Mlines]", "BW[GB/s]");

        for (unsigned n : cores)
        {
            auto const r = bench::run_sim(
                *entry, bench::sched_model::hpx_like, n, scale);
            if (r.failed)
            {
                std::printf("%6u %12s\n", n, "fail");
                continue;
            }
            std::printf("%6u %12.1f %14.2f %14.2f %14.2f %12.2f\n", n,
                r.exec_time_s * 1e3,
                static_cast<double>(r.offcore_data_rd) * 1e-6,
                static_cast<double>(r.offcore_rfo) * 1e-6,
                static_cast<double>(r.offcore_code_rd) * 1e-6,
                r.offcore_bandwidth_gbs());
        }
    }
    return 0;
}
