// Cost of the causal profiler itself (ISSUE: the analysis must be
// cheap enough to run after every traced experiment).
//
// Deterministic sim traces of three labeled workloads (Inncabs sort,
// Task Bench stencil, Inncabs fib) are profiled and swept repeatedly;
// the medians of profile() and the full causal_whatif() grid are
// reported per workload next to the trace size, plus the /causal
// self-counters — the subsystem's own cost measured with the paper's
// intrinsic-counter idiom.
//
//   $ ./causal_overhead [--samples=S] [--workers=P]
//                       [--json=BENCH_causal.json] [--trace-dir=DIR]
//
// --trace-dir additionally writes each recorded trace as
// DIR/causal_<workload>.mhtrace — CI feeds those to the
// `minihpx-trace causal` CLI smoke.
#include <inncabs/fib.hpp>
#include <inncabs/sort.hpp>
#include <minihpx/causal/causal.hpp>
#include <minihpx/perf/perf.hpp>
#include <minihpx/sim/engine.hpp>
#include <minihpx/sim/simulator.hpp>
#include <minihpx/taskbench/taskbench.hpp>
#include <minihpx/trace/trace.hpp>
#include <minihpx/util/cli.hpp>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

using namespace minihpx;
namespace tb = minihpx::taskbench;

namespace {

double median(std::vector<double> v)
{
    std::sort(v.begin(), v.end());
    return v.empty() ? 0.0 : v[v.size() / 2];
}

template <typename F>
double time_ms(F&& fn)
{
    auto const t0 = std::chrono::steady_clock::now();
    fn();
    auto const dt = std::chrono::steady_clock::now() - t0;
    return static_cast<double>(
               std::chrono::duration_cast<std::chrono::microseconds>(dt)
                   .count()) /
        1000.0;
}

trace::trace_data record_sim(
    std::function<void()> const& body, unsigned cores)
{
    sim::sim_config config;
    config.cores = cores;
    sim::simulator sim(config);

    trace::trace_options options;
    options.enabled = true;
    options.destination = "";
    trace::sim_session session(sim, options);
    auto memory =
        std::make_shared<trace::memory_sink>(trace::clock_kind::virtual_);
    session.add_sink(memory);
    auto const report = sim.run(body);
    if (report.failed)
    {
        std::fprintf(
            stderr, "sim run failed: %s\n", report.failure_reason.c_str());
        std::exit(1);
    }
    session.finish();
    return memory->take();
}

void write_trace(trace::trace_data const& data, std::string const& path)
{
    trace::mhtrace_file_sink sink(path, data.clock);
    if (!sink.ok())
    {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        std::exit(1);
    }
    for (trace::event e : data.events)
    {
        // Loaded/memory traces hold string-table ids; the live sink
        // expects pointers it can re-intern.
        if (static_cast<trace::event_kind>(e.kind) ==
                trace::event_kind::label &&
            e.aux < data.strings.size())
            e.aux = static_cast<std::uint64_t>(
                reinterpret_cast<std::uintptr_t>(
                    data.strings[e.aux].c_str()));
        sink.consume(e);
    }
    sink.close();
}

struct row
{
    char const* name;
    std::uint64_t events;
    std::uint64_t labels;    // labels with curves
    double profile_ms;
    double whatif_ms;
    std::string rank1;
    double rank1_speedup50;
};

}    // namespace

int main(int argc, char** argv)
{
    util::cli_args const args(argc, argv);
    unsigned const samples =
        static_cast<unsigned>(args.int_or("samples", 5));
    unsigned const workers =
        static_cast<unsigned>(args.int_or("workers", 2));
    std::string const trace_dir = args.value_or("trace-dir", "");

    std::printf("== causal analysis overhead (%u samples, P=%u) ==\n\n",
        samples, workers);

    struct workload
    {
        char const* name;
        std::function<void()> body;
    };
    std::vector<workload> const workloads = {
        {"sort",
            [] {
                (void) inncabs::sort_bench<engine::sim_engine>::run(
                    {.n = 1 << 16, .serial_cutoff = 2048});
            }},
        {"stencil",
            [] {
                tb::graph_spec spec;
                spec.type = tb::graph_type::stencil_1d;
                spec.width = 64;
                spec.steps = 32;
                spec.task_ns = 50'000;
                (void) tb::run_graph<engine::sim_engine>(spec);
            }},
        {"fib", [] {
             (void) inncabs::fib_bench<engine::sim_engine>::run(
                 {.n = 18, .body_ns = 25'000});
         }},
    };

    std::vector<row> rows;
    for (auto const& w : workloads)
    {
        trace::trace_data const data = record_sim(w.body, workers);
        if (!trace_dir.empty())
            write_trace(
                data, trace_dir + "/causal_" + w.name + ".mhtrace");

        causal::whatif_report report;
        std::vector<double> profile_ms, whatif_ms;
        for (unsigned s = 0; s < samples; ++s)
        {
            profile_ms.push_back(
                time_ms([&] { (void) causal::profile(data); }));
            whatif_ms.push_back(time_ms(
                [&] { report = causal::causal_whatif(data); }));
        }

        row r;
        r.name = w.name;
        r.events = data.events.size();
        r.labels = report.curves.size();
        r.profile_ms = median(profile_ms);
        r.whatif_ms = median(whatif_ms);
        r.rank1 =
            report.curves.empty() ? "-" : report.curves.front().label;
        r.rank1_speedup50 = 0.0;
        if (!report.curves.empty())
            for (auto const& p : report.curves.front().points)
                if (p.optimized_pct == 50.0)
                    r.rank1_speedup50 = p.projected_speedup;
        rows.push_back(r);

        std::printf("%s: %llu events, %llu labeled curves\n", w.name,
            static_cast<unsigned long long>(r.events),
            static_cast<unsigned long long>(r.labels));
        std::printf("  %-24s %10.3f ms\n", "profile pass (median)",
            r.profile_ms);
        std::printf("  %-24s %10.3f ms\n", "whatif grid (median)",
            r.whatif_ms);
        std::printf("  CAUSAL rank=1 label=%s speedup@50%%=%.3f\n\n",
            r.rank1.c_str(), r.rank1_speedup50);
    }

    auto const& stats = causal::global_stats();
    std::printf("/causal/profile/passes   %llu\n",
        static_cast<unsigned long long>(stats.profile_passes.load()));
    std::printf("/causal/profile/time/ns  %llu\n",
        static_cast<unsigned long long>(stats.profile_time_ns.load()));
    std::printf("/causal/whatif/sweeps    %llu\n",
        static_cast<unsigned long long>(stats.whatif_sweeps.load()));

    if (auto path = args.value("json"))
    {
        std::FILE* f = std::fopen(path->c_str(), "w");
        if (!f)
        {
            std::fprintf(stderr, "cannot open %s\n", path->c_str());
            return 1;
        }
        std::fprintf(f,
            "{\n  \"benchmark\": \"causal_overhead\",\n"
            "  \"workers\": %u,\n  \"results\": [\n",
            workers);
        for (std::size_t i = 0; i < rows.size(); ++i)
            std::fprintf(f,
                "    {\"workload\": \"%s\", \"events\": %llu, "
                "\"labels\": %llu, \"profile_ms\": %.3f, "
                "\"whatif_ms\": %.3f, \"rank1\": \"%s\", "
                "\"rank1_speedup50\": %.4f}%s\n",
                rows[i].name,
                static_cast<unsigned long long>(rows[i].events),
                static_cast<unsigned long long>(rows[i].labels),
                rows[i].profile_ms, rows[i].whatif_ms,
                rows[i].rank1.c_str(), rows[i].rank1_speedup50,
                i + 1 < rows.size() ? "," : "");
        std::fprintf(f,
            "  ],\n  \"counters\": {\"profile_passes\": %llu, "
            "\"profile_time_ns\": %llu, \"whatif_sweeps\": %llu}\n}\n",
            static_cast<unsigned long long>(stats.profile_passes.load()),
            static_cast<unsigned long long>(stats.profile_time_ns.load()),
            static_cast<unsigned long long>(stats.whatif_sweeps.load()));
        std::fclose(f);
        std::printf("wrote %s\n", path->c_str());
    }
    return 0;
}
