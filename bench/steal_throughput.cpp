// Steal-heavy scheduler throughput: the measured side of the queue
// ablation (DESIGN.md choice #2, docs/SCHEDULER.md).
//
// A single producer task spawns N tiny tasks with launch::async, so
// every task lands at the bottom of the producer's own queue and every
// other worker makes progress only by stealing. Tasks/s under this
// workload is dominated by queue-operation cost and steal contention —
// exactly where the mutex deque and the Chase-Lev deque differ. The
// victim-policy knobs exercise the locality-aware selection (DESIGN.md
// choice #10): with --numa-domains=D the same-/cross-domain steal split
// is reported per cell, straight from /threads/steal/{same,cross}-domain
// worker stats.
//
//   $ ./steal_throughput [--tasks=N] [--reps=R] [--workers=1,4,16]
//                        [--victim-policy=random|numa] [--numa-domains=D]
//                        [--json=BENCH_scheduler.json]
//
// The JSON report (CI smoke artifact) carries tasks/s per
// {policy, workers} cell plus the 16-worker chase-lev/mutex speedup.
#include <minihpx/minihpx.hpp>
#include <minihpx/threads/queue_policy.hpp>
#include <minihpx/threads/topology.hpp>
#include <minihpx/util/cli.hpp>
#include <minihpx/util/strings.hpp>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace minihpx;

namespace {

void tiny_task()
{
    // ~a few hundred ns of real work: enough that a task is not free,
    // small enough that queue traffic dominates.
    volatile double x = 1.0;
    for (int i = 0; i < 64; ++i)
        x = x * 1.0000001 + 0.5;
}

struct cell
{
    threads::queue_policy policy;
    unsigned workers;
    double tasks_per_s;
    std::uint64_t steals_same = 0;
    std::uint64_t steals_cross = 0;
};

struct run_result
{
    double tasks_per_s = 0;
    std::uint64_t steals_same = 0;
    std::uint64_t steals_cross = 0;
};

run_result run_once(threads::queue_policy policy,
    threads::victim_policy victim, unsigned numa_domains, unsigned workers,
    std::size_t tasks)
{
    runtime_config config;
    config.sched.num_workers = workers;
    config.sched.queue = policy;
    config.sched.steal.victim = victim;
    config.sched.numa_domains = numa_domains;
    runtime rt(config);

    auto const t0 = std::chrono::steady_clock::now();
    async([tasks] {
        std::vector<future<void>> inflight;
        inflight.reserve(tasks);
        for (std::size_t i = 0; i < tasks; ++i)
            inflight.push_back(async([] { tiny_task(); }));
        wait_all(inflight);
    }).get();
    auto const dt = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0)
                        .count();

    run_result r;
    r.tasks_per_s = static_cast<double>(tasks) / dt;
    auto& sched = rt.get_scheduler();
    for (unsigned i = 0; i < sched.num_workers(); ++i)
    {
        auto const& s = sched.get_worker(i).get_stats();
        r.steals_same +=
            s.steals_same_domain.load(std::memory_order_relaxed);
        r.steals_cross +=
            s.steals_cross_domain.load(std::memory_order_relaxed);
    }
    return r;
}

run_result best_of(threads::queue_policy policy,
    threads::victim_policy victim, unsigned numa_domains, unsigned workers,
    std::size_t tasks, unsigned reps)
{
    run_result best;
    for (unsigned r = 0; r < reps; ++r)
    {
        auto const one =
            run_once(policy, victim, numa_domains, workers, tasks);
        if (one.tasks_per_s > best.tasks_per_s)
            best = one;
    }
    return best;
}

std::vector<unsigned> workers_from_cli(util::cli_args const& args)
{
    // split() returns views into its argument: keep the string alive.
    std::string const spec = args.value_or("workers", "1,4,16");
    std::vector<unsigned> workers;
    for (auto part : util::split(spec, ','))
        workers.push_back(static_cast<unsigned>(
            std::strtoul(std::string(part).c_str(), nullptr, 10)));
    return workers;
}

}    // namespace

int main(int argc, char** argv)
{
    util::cli_args args(argc, argv);
    auto const tasks =
        static_cast<std::size_t>(args.int_or("tasks", 20000));
    auto const reps = static_cast<unsigned>(args.int_or("reps", 3));
    auto const workers = workers_from_cli(args);
    auto const victim =
        threads::parse_victim_policy(args.value_or("victim-policy", "numa"))
            .value_or(threads::victim_policy::numa);
    auto const domains =
        static_cast<unsigned>(args.int_or("numa-domains", 0));

    std::printf("steal_throughput: %zu tasks/run, best of %u reps, "
                "single producer, victim=%s domains=%s\n\n",
        tasks, reps, threads::to_string(victim),
        domains ? std::to_string(domains).c_str() : "sysfs");
    std::printf("%8s %12s %16s %12s %12s\n", "workers", "policy", "tasks/s",
        "same-dom", "cross-dom");

    std::vector<cell> cells;
    for (unsigned n : workers)
    {
        for (auto policy : {threads::queue_policy::mutex_deque,
                 threads::queue_policy::chase_lev})
        {
            auto const r =
                best_of(policy, victim, domains, n, tasks, reps);
            cells.push_back(
                {policy, n, r.tasks_per_s, r.steals_same, r.steals_cross});
            std::printf("%8u %12s %16.0f %12llu %12llu\n", n,
                threads::to_string(policy), r.tasks_per_s,
                static_cast<unsigned long long>(r.steals_same),
                static_cast<unsigned long long>(r.steals_cross));
        }
    }

    // Speedup at the largest worker count (the acceptance number).
    unsigned const top = *std::max_element(workers.begin(), workers.end());
    double mutex_rate = 0, cl_rate = 0;
    for (auto const& c : cells)
    {
        if (c.workers != top)
            continue;
        (c.policy == threads::queue_policy::chase_lev ? cl_rate :
                                                        mutex_rate) =
            c.tasks_per_s;
    }
    double const speedup = mutex_rate > 0 ? cl_rate / mutex_rate : 0;
    std::printf("\nchase-lev vs mutex at %u workers: %.2fx\n", top, speedup);

    if (auto path = args.value("json"))
    {
        std::FILE* f = std::fopen(path->c_str(), "w");
        if (!f)
        {
            std::fprintf(stderr, "cannot open %s\n", path->c_str());
            return 1;
        }
        std::fprintf(f,
            "{\n  \"benchmark\": \"steal_throughput\",\n"
            "  \"tasks\": %zu,\n  \"reps\": %u,\n"
            "  \"victim_policy\": \"%s\",\n  \"results\": [\n",
            tasks, reps, threads::to_string(victim));
        for (std::size_t i = 0; i < cells.size(); ++i)
            std::fprintf(f,
                "    {\"policy\": \"%s\", \"workers\": %u, "
                "\"tasks_per_s\": %.1f, \"steals_same_domain\": %llu, "
                "\"steals_cross_domain\": %llu}%s\n",
                threads::to_string(cells[i].policy), cells[i].workers,
                cells[i].tasks_per_s,
                static_cast<unsigned long long>(cells[i].steals_same),
                static_cast<unsigned long long>(cells[i].steals_cross),
                i + 1 < cells.size() ? "," : "");
        std::fprintf(f,
            "  ],\n  \"speedup_%uw\": %.3f\n}\n", top, speedup);
        std::fclose(f);
        std::printf("wrote %s\n", path->c_str());
    }
    return 0;
}
