// Ablations for the design choices DESIGN.md §5 calls out, on the
// simulated node:
//   1. launch::async (child stealing) vs launch::fork (continuation
//      stealing) — the HPX 0.9.11 feature the paper describes.
//   2. Steal-seed sensitivity (determinism knob): spread of exec time
//      across victim-selection seeds.
//   3. Spawn-serialization sensitivity: the parameter that caps very
//      fine-grained scaling (what-if sweep).
#include "common.hpp"

#include <inncabs/fib.hpp>
#include <minihpx/sim/engine.hpp>

namespace {

using minihpx::sim::sim_engine;

// fib with selectable launch policy for the spawn.
std::uint64_t fib_policy(int n, sim_engine::launch policy)
{
    sim_engine::annotate_work({.cpu_ns = 550});
    if (n < 2)
        return static_cast<std::uint64_t>(n);
    auto left = sim_engine::async(
        policy, [n, policy] { return fib_policy(n - 1, policy); });
    std::uint64_t const right = fib_policy(n - 2, policy);
    return left.get() + right;
}

bench::sim_report run_fib(
    unsigned cores, sim_engine::launch policy, std::uint64_t seed = 42)
{
    bench::sim_config config;
    config.cores = cores;
    config.seed = seed;
    bench::simulator sim(config);
    return sim.run([policy] { (void) fib_policy(22, policy); });
}

}    // namespace

int main()
{
    bench::print_platform_header("Ablations: launch policy / steal seed /"
                                 " spawn serialization");

    std::printf("-- 1. child stealing (async) vs continuation stealing "
                "(fork), fib(22) --\n");
    std::printf("%6s %14s %14s %12s %12s\n", "cores", "async[ms]",
        "fork[ms]", "steals(a)", "steals(f)");
    for (unsigned n : {1u, 2u, 4u, 8u, 16u})
    {
        auto const a = run_fib(n, sim_engine::launch::async);
        auto const f = run_fib(n, sim_engine::launch::fork);
        std::printf("%6u %14.1f %14.1f %12llu %12llu\n", n,
            a.exec_time_s * 1e3, f.exec_time_s * 1e3,
            static_cast<unsigned long long>(a.steals),
            static_cast<unsigned long long>(f.steals));
    }

    std::printf("\n-- 2. steal-seed sensitivity, fib(22), 8 cores --\n");
    std::printf("%8s %14s %12s\n", "seed", "exec[ms]", "steals");
    double lo = 1e300, hi = 0;
    for (std::uint64_t seed : {1ull, 7ull, 42ull, 99ull, 12345ull})
    {
        auto const r = run_fib(8, sim_engine::launch::async, seed);
        lo = std::min(lo, r.exec_time_s);
        hi = std::max(hi, r.exec_time_s);
        std::printf("%8llu %14.1f %12llu\n",
            static_cast<unsigned long long>(seed), r.exec_time_s * 1e3,
            static_cast<unsigned long long>(r.steals));
    }
    std::printf("spread: %.1f%%\n", (hi - lo) / lo * 100.0);

    std::printf("\n-- 3. spawn-serialization what-if, fib(22), 16 cores --\n");
    std::printf("%14s %14s %12s\n", "serial[ns]", "exec[ms]", "speedup");
    for (double serial : {0.0, 100.0, 250.0, 500.0, 1000.0})
    {
        bench::sim_config config;
        config.cores = 16;
        config.machine.hpx_spawn_serial_ns = serial;
        bench::simulator sim16(config);
        auto const r16 = sim16.run(
            [] { (void) fib_policy(22, sim_engine::launch::async); });
        config.cores = 1;
        bench::simulator sim1(config);
        auto const r1 = sim1.run(
            [] { (void) fib_policy(22, sim_engine::launch::async); });
        std::printf("%14.0f %14.1f %12.2f\n", serial,
            r16.exec_time_s * 1e3, r1.exec_time_s / r16.exec_time_s);
    }

    std::printf("\n-- 4. queue-policy knob (bookkeeping only), fib(22), "
                "8 cores --\n");
    std::printf("%12s %14s %12s\n", "queue", "exec[ms]", "steals");
    bool identical = true;
    bench::sim_report first{};
    for (auto queue : {minihpx::threads::queue_policy::mutex_deque,
             minihpx::threads::queue_policy::chase_lev})
    {
        bench::sim_config config;
        config.cores = 8;
        config.queue = queue;
        bench::simulator sim(config);
        auto const r = sim.run(
            [] { (void) fib_policy(22, sim_engine::launch::async); });
        if (queue == minihpx::threads::queue_policy::mutex_deque)
            first = r;
        else
            identical = r.exec_time_s == first.exec_time_s &&
                r.steals == first.steals;
        std::printf("%12s %14.1f %12llu\n",
            minihpx::threads::to_string(queue), r.exec_time_s * 1e3,
            static_cast<unsigned long long>(r.steals));
    }
    std::printf("virtual results %s across queue policies (the steal-cost\n"
                "model in machine_desc, not the deque implementation, is\n"
                "the source of truth for paper figures).\n",
        identical ? "identical" : "DIVERGED — model regression!");

    std::printf("\nshape target: fork reduces steals for strict fork/join;\n"
                "seeds change little; serialization caps fine-grain "
                "speedup.\n");
    return identical ? 0 : 1;
}
