// Tile-size x victim-policy sweep for the blocked matmul workload: the
// closed loop between the cache/NUMA-aware scheduler (DESIGN.md choice
// #10) and the memory-traffic counters that diagnose it.
//
// For every {engine, tile, policy} cell the driver runs one multiply
// and emits a grep-stable line
//
//   MATMUL engine=E tile=T policy=P ns=N dtlb_miss_rate=R llc_miss_rate=L
//
// where the miss rates come from the same place a paper run would read
// them: the real engine reads /papi{locality#0/total}/dtlb/* through an
// /arithmetics/divide derived counter (real PAPI hardware counts when
// <papi.h> is present, the deterministic footprint model otherwise —
// the backend is printed in the header), and the simulator reports its
// modeled totals. Expected shape: tile=0 thrashes the 512-entry STLB
// (miss rates in the percent range), tile=64 fits in 24 pages
// (compulsory walks only, ~100-1000x lower), and the numa policy trades
// a few same-domain steals for batched cross-domain raids without
// moving the checksum.
//
//   $ ./matmul_tiling [--n=512] [--band=32] [--tiles=0,16,32,64,128]
//                     [--engines=minihpx,std,sim] [--policies=random,numa]
//                     [--numa-domains=2] [--sim-cores=20]
//                     [--json=BENCH_matmul.json]
#include <inncabs/matmul.hpp>
#include <minihpx/minihpx.hpp>
#include <minihpx/papi/native.hpp>
#include <minihpx/papi/papi_engine.hpp>
#include <minihpx/perf/perf.hpp>
#include <minihpx/sim/simulator.hpp>
#include <minihpx/util/cli.hpp>
#include <minihpx/util/strings.hpp>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace minihpx;

namespace {

struct row
{
    std::string engine;
    std::size_t tile;
    std::string policy;
    std::uint64_t ns;
    double dtlb_miss_rate;
    double llc_miss_rate;
    double checksum;
};

std::vector<std::size_t> sizes_from(std::string const& spec)
{
    std::vector<std::size_t> out;
    for (auto part : util::split(spec, ','))
        out.push_back(static_cast<std::size_t>(
            std::strtoul(std::string(part).c_str(), nullptr, 10)));
    return out;
}

std::vector<std::string> names_from(std::string const& spec)
{
    std::vector<std::string> out;
    for (auto part : util::split(spec, ','))
        out.emplace_back(part);
    return out;
}

void print_row(row const& r)
{
    std::printf("MATMUL engine=%s tile=%zu policy=%s ns=%llu "
                "dtlb_miss_rate=%.6f llc_miss_rate=%.6f checksum=%.6g\n",
        r.engine.c_str(), r.tile, r.policy.c_str(),
        static_cast<unsigned long long>(r.ns), r.dtlb_miss_rate,
        r.llc_miss_rate, r.checksum);
}

// One real-runtime cell: victim policy through scheduler config, miss
// rates through the registry's derived-divide counters over the /papi
// dtlb and llc totals.
row run_minihpx(inncabs::matmul_bench<engine::minihpx_engine>::params p,
    threads::victim_policy victim, unsigned numa_domains)
{
    runtime_config config;
    config.sched.steal.victim = victim;
    config.sched.numa_domains = numa_domains;
    runtime rt(config);

    papi::papi_engine papi_engine(rt.get_scheduler().num_workers());
    perf::counter_registry registry;
    papi_engine.register_counters(registry);
    papi_engine.install();

    auto dtlb = registry.create(
        "/arithmetics/divide@/papi{locality#0/total}/dtlb/misses,"
        "/papi{locality#0/total}/dtlb/loads");
    auto llc = registry.create(
        "/arithmetics/divide@/papi{locality#0/total}/llc/misses,"
        "/papi{locality#0/total}/llc/loads");

    auto const t0 = std::chrono::steady_clock::now();
    double const checksum =
        inncabs::matmul_bench<engine::minihpx_engine>::run(p);
    auto const ns = static_cast<std::uint64_t>(
        std::chrono::duration<double, std::nano>(
            std::chrono::steady_clock::now() - t0)
            .count());

    row r{"minihpx", p.tile, threads::to_string(victim), ns, 0.0, 0.0,
        checksum};
    if (dtlb)
        r.dtlb_miss_rate = dtlb->get_value().get();
    if (llc)
        r.llc_miss_rate = llc->get_value().get();
    papi_engine.uninstall();
    return r;
}

// Thread-per-task baseline: no scheduler, so no victim policy; the PMU
// totals still accumulate (annotations from non-worker threads land in
// the engine's overflow slot).
row run_std(inncabs::matmul_bench<engine::std_engine>::params p)
{
    papi::papi_engine papi_engine(1);
    papi_engine.install();

    auto const t0 = std::chrono::steady_clock::now();
    double const checksum =
        inncabs::matmul_bench<engine::std_engine>::run(p);
    auto const ns = static_cast<std::uint64_t>(
        std::chrono::duration<double, std::nano>(
            std::chrono::steady_clock::now() - t0)
            .count());

    auto const rate = [&](papi::event num, papi::event den) {
        auto const loads = papi_engine.total(den);
        return loads ? static_cast<double>(papi_engine.total(num)) /
                static_cast<double>(loads) :
                       0.0;
    };
    row r{"std", p.tile, "n/a", ns,
        rate(papi::event::dtlb_misses, papi::event::dtlb_loads),
        rate(papi::event::llc_misses, papi::event::llc_loads), checksum};
    papi_engine.uninstall();
    return r;
}

// Simulated cell on the Table III node: the victim policy is part of
// the cost model here, and the miss rates are the report's modeled
// totals. Virtual time, so the ns column is deterministic.
row run_sim(inncabs::matmul_bench<engine::sim_engine>::params p,
    threads::victim_policy victim, unsigned cores)
{
    sim::sim_config config;
    config.cores = cores;
    config.victim = victim;
    sim::simulator simulator(config);
    auto const report = simulator.run(
        [&] { inncabs::matmul_bench<engine::sim_engine>::run(p); });

    row r{"sim", p.tile, threads::to_string(victim),
        static_cast<std::uint64_t>(report.exec_time_s * 1e9),
        report.dtlb_miss_rate(), report.llc_miss_rate(), 0.0};
    if (report.failed)
        std::printf("sim FAILED: %s\n", report.failure_reason.c_str());
    return r;
}

}    // namespace

int main(int argc, char** argv)
{
    util::cli_args args(argc, argv);
    auto const n = static_cast<std::size_t>(args.int_or("n", 512));
    auto const band = static_cast<std::size_t>(args.int_or("band", 32));
    auto const tiles = sizes_from(args.value_or("tiles", "0,16,32,64,128"));
    auto const engines =
        names_from(args.value_or("engines", "minihpx,std,sim"));
    auto const policies = names_from(args.value_or("policies", "random,numa"));
    auto const domains =
        static_cast<unsigned>(args.int_or("numa-domains", 2));
    auto const sim_cores =
        static_cast<unsigned>(args.int_or("sim-cores", 20));

    std::printf("matmul_tiling: n=%zu band=%zu papi_backend=%s\n", n, band,
        papi::native::backend());

    std::vector<row> rows;
    for (auto const& engine_name : engines)
    {
        for (std::size_t tile : tiles)
        {
            if (engine_name == "std")
            {
                rows.push_back(run_std({.n = n, .tile = tile, .band = band}));
                print_row(rows.back());
                continue;
            }
            for (auto const& policy_name : policies)
            {
                auto const victim =
                    threads::parse_victim_policy(policy_name);
                if (!victim)
                {
                    std::fprintf(stderr, "unknown policy '%s'\n",
                        policy_name.c_str());
                    return 1;
                }
                if (engine_name == "minihpx")
                    rows.push_back(run_minihpx(
                        {.n = n, .tile = tile, .band = band}, *victim,
                        domains));
                else if (engine_name == "sim")
                    rows.push_back(
                        run_sim({.n = n, .tile = tile, .band = band},
                            *victim, sim_cores));
                else
                {
                    std::fprintf(stderr, "unknown engine '%s'\n",
                        engine_name.c_str());
                    return 1;
                }
                print_row(rows.back());
            }
        }
    }

    if (auto path = args.value("json"))
    {
        std::FILE* f = std::fopen(path->c_str(), "w");
        if (!f)
        {
            std::fprintf(stderr, "cannot open %s\n", path->c_str());
            return 1;
        }
        std::fprintf(f,
            "{\n  \"benchmark\": \"matmul_tiling\",\n  \"n\": %zu,\n"
            "  \"band\": %zu,\n  \"papi_backend\": \"%s\",\n"
            "  \"results\": [\n",
            n, band, papi::native::backend());
        for (std::size_t i = 0; i < rows.size(); ++i)
            std::fprintf(f,
                "    {\"engine\": \"%s\", \"tile\": %zu, "
                "\"policy\": \"%s\", \"ns\": %llu, "
                "\"dtlb_miss_rate\": %.6f, \"llc_miss_rate\": %.6f}%s\n",
                rows[i].engine.c_str(), rows[i].tile,
                rows[i].policy.c_str(),
                static_cast<unsigned long long>(rows[i].ns),
                rows[i].dtlb_miss_rate, rows[i].llc_miss_rate,
                i + 1 < rows.size() ? "," : "");
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::printf("wrote %s\n", path->c_str());
    }
    return 0;
}
